"""Heartbeat failure detection under probabilistic message loss.

The heartbeat detector's mistakes are load-bearing for the ◇S contract:
lost heartbeats cause *wrong* suspicions, which the adaptive timeout
must retract (and eventually outgrow).  These tests pin the
wrong-suspicion rate against the loss probability of a declarative
:class:`~repro.net.faults.LossRule`, and its determinism across seeds —
the property the sweep cache relies on.
"""

from repro.failure.heartbeat import wire_heartbeat_detectors
from repro.net.faults import LossRule
from tests.helpers import make_fabric


def run_detectors(loss: float, seed: int, crash_p2_at: float | None = None):
    """A 4-process heartbeat fabric under ``loss``; returns detectors."""
    faults = (
        (LossRule(kind_prefix="fd.heartbeat", probability=loss),)
        if loss > 0
        else ()
    )
    fabric = make_fabric(4, network_kind="constant", faults=faults, seed=seed)
    detectors = wire_heartbeat_detectors(
        fabric.transports, interval=10e-3, timeout=25e-3
    )
    if crash_p2_at is not None:
        fabric.crash(2, at=crash_p2_at)
    fabric.run(until=5.0, max_events=5_000_000)
    return detectors


def wrong_suspicions(loss: float, seed: int) -> int:
    detectors = run_detectors(loss, seed)
    return sum(d.suspicions_raised for d in detectors.values())


class TestWrongSuspicionRate:
    def test_no_loss_means_no_wrong_suspicions(self):
        for seed in (1, 2, 3):
            assert wrong_suspicions(0.0, seed) == 0

    def test_rate_grows_with_loss_probability(self):
        for seed in (1, 2, 3):
            low = wrong_suspicions(0.05, seed)
            mid = wrong_suspicions(0.2, seed)
            high = wrong_suspicions(0.4, seed)
            assert 0 <= low <= mid <= high
            assert high > 0  # 40% loss cannot go unnoticed

    def test_mistakes_are_retracted(self):
        """Every wrong suspicion must be retracted — all processes are
        alive, so a permanent suspicion would break eventual accuracy."""
        detectors = run_detectors(0.3, seed=1)
        for detector in detectors.values():
            assert detector.suspects() == frozenset()
            assert detector.suspicions_retracted == detector.suspicions_raised

    def test_deterministic_across_identical_seeds(self):
        for loss in (0.05, 0.2, 0.4):
            assert wrong_suspicions(loss, seed=7) == wrong_suspicions(
                loss, seed=7
            )

    def test_different_seeds_draw_different_loss_patterns(self):
        counts = {wrong_suspicions(0.2, seed) for seed in range(1, 7)}
        assert len(counts) > 1


class TestCompletenessUnderLoss:
    def test_real_crash_still_detected_despite_loss(self):
        """Losing 30% of heartbeats delays but cannot defeat detection
        of a genuinely crashed process (completeness)."""
        detectors = run_detectors(0.3, seed=2, crash_p2_at=1.0)
        for pid, detector in detectors.items():
            if pid != 2:
                assert detector.is_suspected(2)
