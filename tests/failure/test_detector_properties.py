"""Property-based tests for the failure detectors.

The two ◇S obligations, under randomized crash patterns:

* **Strong completeness** — every crashed process is eventually
  suspected by every correct process.
* **Eventual accuracy** (oracle detector: outright accuracy after the
  scripted mistakes end) — live processes end up unsuspected.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.failure.heartbeat import HeartbeatFailureDetector
from tests.helpers import make_fabric

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def crash_pattern(draw):
    n = draw(st.integers(2, 6))
    crash_count = draw(st.integers(0, n - 1))
    pids = draw(
        st.lists(st.integers(1, n), min_size=crash_count,
                 max_size=crash_count, unique=True)
    )
    times = [draw(st.floats(0.01, 0.3)) for _ in pids]
    return n, list(zip(pids, times))


@SLOW
@given(crash_pattern())
def test_oracle_detector_completeness_and_accuracy(pattern):
    n, crashes = pattern
    fabric = make_fabric(n, f=n - 1, detection_delay=20e-3)
    for pid, at in crashes:
        fabric.crash(pid, at=at)
    fabric.run(until=1.0)
    crashed = {pid for pid, _ in crashes}
    for pid, detector in fabric.detectors.items():
        if pid in crashed:
            continue
        # Completeness: every crashed peer suspected...
        assert crashed - {pid} <= detector.suspects()
        # Accuracy: ...and nobody else.
        assert detector.suspects() <= crashed


@SLOW
@given(crash_pattern())
def test_heartbeat_detector_completeness_and_eventual_accuracy(pattern):
    n, crashes = pattern
    fabric = make_fabric(n, f=n - 1, latency=1e-3)
    detectors = {
        pid: HeartbeatFailureDetector(
            fabric.transports[pid], interval=10e-3, timeout=60e-3
        )
        for pid in fabric.config.processes
    }
    for pid, at in crashes:
        fabric.crash(pid, at=at)
    fabric.run(until=2.0, max_events=3_000_000)
    crashed = {pid for pid, _ in crashes}
    for pid, detector in detectors.items():
        if pid in crashed:
            continue
        assert crashed - {pid} <= detector.suspects()
        # With constant latency well under the timeout there are no
        # false suspicions to retract at quiescence.
        assert detector.suspects() <= crashed
