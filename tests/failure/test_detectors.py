"""Tests for crash schedules and failure detectors."""

import pytest

from repro.core.config import SystemConfig
from repro.core.exceptions import ConfigurationError, ResilienceExceededError
from repro.failure.crash import CrashSchedule
from repro.failure.detector import FalseSuspicion, StaticFailureDetector
from repro.failure.heartbeat import HeartbeatFailureDetector
from tests.helpers import make_fabric


class TestCrashSchedule:
    def test_none_is_empty(self):
        assert CrashSchedule.none().faulty == frozenset()

    def test_single_and_of(self):
        s = CrashSchedule.of((2, 0.5), (3, 1.0))
        assert s.faulty == {2, 3}
        assert s.crash_time(2) == 0.5
        assert s.crash_time(1) is None

    def test_rejects_duplicate_crash(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule.of((2, 0.5), (2, 1.0))

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule.single(1, -0.5)

    def test_validate_against_resilience(self):
        config = SystemConfig(n=3, f=1)
        CrashSchedule.single(2, 0.1).validate_against(config)
        with pytest.raises(ResilienceExceededError):
            CrashSchedule.of((1, 0.1), (2, 0.2)).validate_against(config)

    def test_validate_rejects_unknown_process(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule.single(9, 0.1).validate_against(SystemConfig(n=3))

    def test_apply_crashes_at_the_right_time(self):
        fabric = make_fabric(3)
        CrashSchedule.single(2, 0.4).apply(fabric.engine, fabric.processes)
        fabric.run(until=0.3)
        assert not fabric.processes[2].crashed
        fabric.run(until=0.5)
        assert fabric.processes[2].crashed


class TestOracleDetector:
    def test_suspects_after_detection_delay(self):
        fabric = make_fabric(3, detection_delay=20e-3)
        fabric.crash(2, at=0.1)
        fabric.run(until=0.11)
        assert not fabric.detectors[1].is_suspected(2)
        fabric.run(until=0.13)
        assert fabric.detectors[1].is_suspected(2)
        assert fabric.detectors[3].is_suspected(2)

    def test_never_suspects_live_processes(self):
        fabric = make_fabric(3)
        fabric.run(until=1.0)
        for pid, detector in fabric.detectors.items():
            assert detector.suspects() == frozenset()

    def test_rejects_zero_delay(self):
        from repro.failure.detector import OracleFailureDetector
        fabric = make_fabric(2)
        with pytest.raises(ConfigurationError):
            OracleFailureDetector(fabric.processes[1], detection_delay=0.0)

    def test_scripted_false_suspicion_raises_and_retracts(self):
        fs = FalseSuspicion(observer=1, target=2, start=0.1, end=0.2)
        fabric = make_fabric(3, false_suspicions=(fs,))
        fabric.run(until=0.15)
        assert fabric.detectors[1].is_suspected(2)
        assert not fabric.detectors[3].is_suspected(2)  # only the observer errs
        fabric.run(until=0.25)
        assert not fabric.detectors[1].is_suspected(2)
        assert fabric.detectors[1].suspicions_retracted == 1

    def test_false_suspicion_validation(self):
        with pytest.raises(ConfigurationError):
            FalseSuspicion(observer=1, target=2, start=0.5, end=0.5)

    def test_change_listeners_fire(self):
        fabric = make_fabric(2, detection_delay=10e-3)
        changes = []
        fabric.detectors[1].on_change(lambda: changes.append(fabric.engine.now))
        fabric.crash(2, at=0.1)
        fabric.run(until=0.2)
        assert changes == [pytest.approx(0.11)]


class TestStaticDetector:
    def test_initial_set_and_mutation(self):
        fabric = make_fabric(2)
        detector = StaticFailureDetector(fabric.processes[1], frozenset({2}))
        assert detector.is_suspected(2)
        detector.force_trust(2)
        assert not detector.is_suspected(2)
        detector.force_suspect(2)
        assert detector.is_suspected(2)


class TestHeartbeatDetector:
    def make(self, n=3, **kwargs):
        fabric = make_fabric(n, latency=1e-3)
        detectors = {
            pid: HeartbeatFailureDetector(fabric.transports[pid], **kwargs)
            for pid in fabric.config.processes
        }
        return fabric, detectors

    def test_no_suspicion_in_quiet_network(self):
        fabric, detectors = self.make(interval=10e-3, timeout=50e-3)
        fabric.run(until=1.0)
        for detector in detectors.values():
            assert detector.suspects() == frozenset()

    def test_crashed_process_is_suspected(self):
        fabric, detectors = self.make(interval=10e-3, timeout=50e-3)
        fabric.crash(3, at=0.2)
        fabric.run(until=0.5)
        assert detectors[1].is_suspected(3)
        assert detectors[2].is_suspected(3)

    def test_suspicion_latency_is_bounded_by_timeout(self):
        fabric, detectors = self.make(interval=10e-3, timeout=50e-3)
        fabric.crash(3, at=0.2)
        fabric.run(until=0.2 + 50e-3 + 3 * 10e-3)
        assert detectors[1].is_suspected(3)

    def test_validation(self):
        fabric = make_fabric(2)
        with pytest.raises(ConfigurationError):
            HeartbeatFailureDetector(fabric.transports[1], interval=0.0)
        with pytest.raises(ConfigurationError):
            HeartbeatFailureDetector(
                fabric.transports[1], interval=20e-3, timeout=10e-3
            )

    def test_heartbeats_flow_on_the_network(self):
        fabric, _ = self.make(interval=10e-3, timeout=50e-3)
        fabric.run(until=0.1)
        assert fabric.network.total_frames("fd.heartbeat") > 0
