"""The composed sharded service: build, route, commit, crash, check.

Key facts baked into these tests (pinned in test_router.py): at two
shards the letters A and B hash to shard 1, C and D to shard 0 — so
(A, B) is a same-shard pair and (A, C) a cross-shard pair.
"""

import dataclasses

import pytest

from repro import CrashSchedule, StackSpec
from repro.core.exceptions import ConfigurationError
from repro.shard import ShardSpec, build_sharded_system
from repro.shard.bank import (
    BankMachine,
    ShardedBank,
    attach_machines,
    spread_accounts,
)
from repro.shard.ops import TxPrepare
from repro.sim.trace import Trace


def _spec(shards=2, n=2, seed=5, **knobs):
    return ShardSpec(
        stack=StackSpec(
            n=n, abcast="indirect", consensus="ct-indirect",
            network="constant", seed=seed,
        ),
        shards=shards,
        **knobs,
    )


def _bank(spec, crashes=None, balances=None):
    service = build_sharded_system(spec, crashes=crashes)
    accounts = balances or spread_accounts(list("ABCD"), spec.shards)
    machines = attach_machines(service, lambda shard: accounts[shard])
    return service, machines, ShardedBank(service)


class TestBuild:
    def test_groups_share_one_engine_and_fork_rngs(self):
        service = build_sharded_system(_spec(shards=3))
        assert len(service.groups) == 3
        assert all(g.engine is service.engine for g in service.groups)
        # Forked registries: same seed, independent streams per shard.
        assert len({id(g.rngs) for g in service.groups}) == 3
        assert service.router.shards == 3
        assert service.commit.router is service.router
        assert all(isinstance(g.trace, Trace) for g in service.groups)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError, match="shards"):
            _spec(shards=0)
        with pytest.raises(ConfigurationError, match="admission"):
            _spec(admission="tail-drop")
        with pytest.raises(ConfigurationError, match="router_capacity"):
            _spec(router_capacity=0)

    def test_crash_schedule_must_name_a_valid_shard(self):
        with pytest.raises(ConfigurationError, match="shard 7"):
            build_sharded_system(
                _spec(), crashes={7: CrashSchedule.single(0, 0.01)}
            )

    def test_traces_length_must_match_shards(self):
        with pytest.raises(ConfigurationError, match="traces"):
            build_sharded_system(_spec(shards=2), traces=[Trace()])


class TestSameShard:
    def test_transfer_rides_one_total_order(self):
        service, machines, bank = _bank(_spec())
        assert bank.transfer("A", "B", 30) is None  # both on shard 1
        assert bank.same_shard == 1 and bank.cross_shard == 0
        assert service.run_until_quiescent(timeout=1.0)
        service.check()
        for pid in service.groups[1].correct_processes():
            machine = machines[(1, pid)]
            assert machine.balances == {"A": 70, "B": 130}

    def test_overdraft_refused_identically_everywhere(self):
        service, machines, bank = _bank(_spec())
        bank.withdraw("C", 10_000)
        bank.deposit("C", 7)
        assert service.run_until_quiescent(timeout=1.0)
        service.check()
        for pid in service.groups[0].correct_processes():
            machine = machines[(0, pid)]
            assert machine.balances["C"] == 107
            assert machine.refused == 1


class TestTwoGroupCommit:
    def test_cross_shard_transfer_commits(self):
        service, machines, bank = _bank(_spec())
        txid = bank.transfer("A", "C", 40)  # shard 1 -> shard 0
        assert txid is not None and bank.cross_shard == 1
        assert service.run_until_quiescent(timeout=1.0)
        service.check()
        assert service.commit.outcome_of(txid) == "commit"
        assert service.commit.committed == 1
        for shard, key, balance in ((1, "A", 60), (0, "C", 140)):
            for pid in service.groups[shard].correct_processes():
                machine = machines[(shard, pid)]
                assert machine.balances[key] == balance
                assert not machine.reserved

    def test_insufficient_funds_aborts_both_legs(self):
        service, machines, bank = _bank(_spec())
        txid = bank.transfer("A", "C", 10_000)
        assert service.run_until_quiescent(timeout=1.0)
        service.check()
        assert service.commit.outcome_of(txid) == "abort"
        assert service.commit.aborted == 1
        # Neither leg moved funds; the credit reservation rolled back.
        for shard in (0, 1):
            for pid in service.groups[shard].correct_processes():
                machine = machines[(shard, pid)]
                assert all(b == 100 for b in machine.balances.values())
                assert not machine.reserved

    def test_submit_validates_legs(self):
        service = build_sharded_system(_spec())
        commit = service.commit
        with pytest.raises(ConfigurationError, match="at least one leg"):
            commit.submit({})
        with pytest.raises(ConfigurationError, match="disagree on txid"):
            commit.submit({
                0: TxPrepare("t1", "C", "debit", 1),
                1: TxPrepare("t2", "A", "credit", 1),
            })
        with pytest.raises(ConfigurationError, match="hashes to shard"):
            commit.submit({0: TxPrepare("t3", "A", "debit", 1)})
        commit.submit({
            0: TxPrepare("t4", "C", "debit", 1),
            1: TxPrepare("t4", "A", "credit", 1),
        })
        with pytest.raises(ConfigurationError, match="already submitted"):
            commit.submit({0: TxPrepare("t4", "C", "debit", 1)})


class TestCrashTolerance:
    def test_commits_survive_coordinator_crash(self):
        # Crash shard 0's p1 — its group's Chandra-Toueg round-1
        # coordinator — while cross-shard transfers are in flight
        # (t=200 µs: after the prepares were forwarded, before any
        # outcome is ordered); n=3 tolerates f=1, so the transaction
        # still commits and every checker stays clean.
        service, machines, bank = _bank(
            _spec(n=3),
            crashes={0: CrashSchedule.single(1, 2e-4)},
        )
        t1 = bank.transfer("A", "C", 10)
        t2 = bank.transfer("D", "B", 20)  # shard 0 debit leg
        assert service.run_until_quiescent(timeout=5.0)
        service.check()
        assert service.commit.outcome_of(t1) == "commit"
        assert service.commit.outcome_of(t2) == "commit"
        survivors = service.groups[0].correct_processes()
        assert 1 not in survivors
        reference = machines[(0, sorted(survivors)[0])]
        for pid in survivors:
            assert machines[(0, pid)].balances == reference.balances
        assert reference.balances == {"C": 110, "D": 80}


class TestDeterminism:
    @staticmethod
    def _run_once(seed):
        service, machines, bank = _bank(_spec(n=3, seed=seed))
        bank.transfer("A", "C", 15)
        bank.transfer("C", "D", 5)
        bank.deposit("B", 3)
        assert service.run_until_quiescent(timeout=2.0)
        balances = {
            (shard, pid): machines[(shard, pid)].balances
            for shard in range(2)
            for pid in service.groups[shard].correct_processes()
        }
        return (
            balances,
            [list(c) for c in service.router.completions],
            [len(g.trace.adeliveries()) for g in service.groups],
        )

    def test_same_seed_same_run(self):
        assert self._run_once(11) == self._run_once(11)

    def test_seed_changes_timing_not_outcome(self):
        balances_a, completions_a, _ = self._run_once(11)
        balances_b, completions_b, _ = self._run_once(12)
        assert balances_a == balances_b  # safety is seed-independent
