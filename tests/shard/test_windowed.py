"""Windowed router statistics and their sweep-column wiring.

``window_count`` must be a pure function of the measurement bounds and
the width — not of traffic — so every point of a sweep shares one
windowed schema and ``concat``'s strict mode accepts the slices.
"""

from types import SimpleNamespace

import pytest

from repro.core.exceptions import ConfigurationError
from repro.net.setups import SETUP_1
from repro.shard.router import Router
from repro.shard.sweep import ShardSweepSpec, run_shard_point
from repro.sim.engine import Engine
from repro.stack.builder import StackSpec


def _bare_router(shards=2):
    """A router over inert groups: no processes, no abcast wiring —
    just the admission/completion bookkeeping under test."""
    groups = [
        SimpleNamespace(config=SimpleNamespace(processes=()), abcasts={})
        for _ in range(shards)
    ]
    return Router(Engine(), groups)


class TestWindowCount:
    def test_pure_function_of_bounds_and_width(self):
        router = _bare_router()
        router.measure_from = 0.1
        router.measure_until = 0.5
        assert router.window_count(0.1) == 4
        assert router.window_count(0.25) == 2
        assert router.window_count(1.0) == 1
        # Traffic does not change the schema.
        router.completions[0].append((0.2, 0.01))
        assert router.window_count(0.1) == 4

    def test_ragged_tail_rounds_up(self):
        router = _bare_router()
        router.measure_from = 0.0
        router.measure_until = 0.35
        assert router.window_count(0.1) == 4

    def test_float_noise_does_not_add_a_window(self):
        router = _bare_router()
        router.measure_from = 0.1
        router.measure_until = 0.4  # 0.3 span; 0.3/0.1 is 2.9999... here
        assert router.window_count(0.1) == 3

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError, match="window"):
            _bare_router().window_count(0.0)


class TestWindowedStats:
    def _loaded_router(self):
        router = _bare_router()
        router.measure_from = 0.1
        router.measure_until = 0.3
        # Shard 0: one completion per window; shard 1: all in window 1.
        router.completions[0] = [(0.12, 0.010), (0.25, 0.030)]
        router.completions[1] = [(0.21, 0.020), (0.22, 0.040)]
        # Outside the measurement bounds: never counted.
        router.completions[0].append((0.05, 9.9))
        router.completions[1].append((0.30, 9.9))
        return router

    def test_buckets_by_arrival(self):
        router = self._loaded_router()
        windows = router.windowed_stats(0.1)
        assert len(windows) == 2
        assert [w["completed"] for w in windows] == [1.0, 3.0]
        assert windows[0]["start"] == pytest.approx(0.1)
        assert windows[0]["end"] == pytest.approx(0.2)
        assert windows[1]["end"] == pytest.approx(0.3)
        assert windows[0]["goodput"] == pytest.approx(10.0)
        assert windows[1]["goodput"] == pytest.approx(30.0)

    def test_per_shard_slice(self):
        router = self._loaded_router()
        shard0 = router.windowed_stats(0.1, shard=0)
        assert [w["completed"] for w in shard0] == [1.0, 1.0]
        shard1 = router.windowed_stats(0.1, shard=1)
        assert [w["completed"] for w in shard1] == [0.0, 2.0]

    def test_sojourn_percentile_per_window(self):
        router = self._loaded_router()
        windows = router.windowed_stats(0.1)
        assert windows[0]["sojourn_p99_ms"] == pytest.approx(10.0)
        assert windows[1]["sojourn_p99_ms"] == pytest.approx(40.0)
        empty = router.windowed_stats(0.1, shard=1)[0]
        assert empty["sojourn_p99_ms"] == 0.0


def _sweep_spec(**overrides):
    base = dict(
        name="windowed",
        stack=StackSpec(n=2, abcast="indirect", consensus="ct-indirect",
                        network="constant", params=SETUP_1),
        shards=(2,),
        offered_loads=(150.0,),
        duration=0.3,
        warmup=0.1,
        drain=0.4,
        window=0.05,
    )
    base.update(overrides)
    return ShardSweepSpec(**base)


class TestSweepWiring:
    def test_window_must_fit_the_measurement_span(self):
        with pytest.raises(ConfigurationError, match="window"):
            _sweep_spec(window=0.25)  # > duration - warmup
        with pytest.raises(ConfigurationError, match="window"):
            _sweep_spec(window=-0.1)

    def test_points_carry_the_window(self):
        spec = _sweep_spec()
        assert all(p.window == 0.05 for p in spec.points())
        assert all(p.window is None for p in _sweep_spec(window=None).points())

    def test_point_rows_gain_schema_stable_window_columns(self):
        spec = _sweep_spec()
        point = spec.points()[0]
        rows = run_shard_point(point)
        names = rows.columns
        window_columns = [n for n in names if n.startswith("window.")]
        # (duration - warmup) / window = 0.2 / 0.05 = 4 windows, two
        # series each, for every row regardless of traffic.
        assert sorted(window_columns) == sorted(
            [f"window.{i}.goodput" for i in range(4)]
            + [f"window.{i}.sojourn_p99_ms" for i in range(4)]
        )
        assert len(rows) == point.shards
        total = sum(
            rows.column(f"window.{i}.goodput")[shard] * 0.05
            for i in range(4)
            for shard in range(point.shards)
        )
        assert total == pytest.approx(
            sum(rows.column("shard.completed")), abs=1e-6
        )

    def test_without_window_no_columns_appear(self):
        point = _sweep_spec(window=None).points()[0]
        rows = run_shard_point(point)
        assert not [n for n in rows.columns if n.startswith("window.")]
