"""Router key-hashing and admission control.

The hash must be a pure function of the key bytes — identical across
runs, interpreter restarts, and pool worker processes (Python's salted
``hash`` fails all three) — and resharding without a migration protocol
must fail loudly rather than silently forking per-key history.
"""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.message import make_payload
from repro.harness.runner import parallel_map
from repro.shard.router import Router, shard_for
from repro.shard.service import ShardSpec, build_sharded_system
from repro.stack.builder import StackSpec


def _assign(key):
    """Top-level (picklable) worker for the cross-process test."""
    return shard_for(key, 16)


class TestShardFor:
    def test_pinned_assignments(self):
        # Regression anchors: these exact values are part of the data
        # contract — a changed hash re-homes every existing key.
        assert [shard_for(k, 16) for k in
                ("acct-A", "acct-B", "alpha", "beta")] == [1, 15, 14, 4]
        assert [shard_for(k, 2) for k in "ABCD"] == [1, 1, 0, 0]
        assert shard_for("hot-key", 4) == 2

    def test_stable_across_calls_and_runs(self):
        keys = [f"k{i}" for i in range(200)]
        first = [shard_for(k, 16) for k in keys]
        assert [shard_for(k, 16) for k in keys] == first

    def test_stable_across_worker_processes(self):
        keys = [f"k{i}" for i in range(64)]
        local = [_assign(k) for k in keys]
        pooled = parallel_map(_assign, keys, processes=2)
        assert pooled == local

    def test_covers_all_shards(self):
        hit = {shard_for(f"key-{i}", 16) for i in range(1000)}
        assert hit == set(range(16))

    def test_range(self):
        assert all(0 <= shard_for(f"x{i}", 7) < 7 for i in range(100))

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError, match="shards"):
            shard_for("k", 0)


def _service(shards=2, **knobs):
    return build_sharded_system(
        ShardSpec(
            stack=StackSpec(
                n=2, abcast="indirect", consensus="ct-indirect",
                network="constant", seed=3,
            ),
            shards=shards,
            **knobs,
        )
    )


class TestAssignmentMemoAndRebalance:
    def test_shard_of_matches_hash_and_memoizes(self):
        service = _service()
        router = service.router
        assert router.shard_of("C") == shard_for("C", 2) == 0
        assert router.shard_of("A") == shard_for("A", 2) == 1
        assert router._assignments == {"C": 0, "A": 1}

    def test_rebalance_moved_keys_fail_loudly_by_name(self):
        service = _service()
        router = service.router
        moved = [k for k in "ABCDEFGH" if shard_for(k, 2) != shard_for(k, 3)]
        assert moved, "test needs at least one moving key"
        for key in "ABCDEFGH":
            router.shard_of(key)
        with pytest.raises(ConfigurationError) as err:
            router.rebalance(3)
        for key in moved:
            assert repr(key) in str(err.value)

    def test_rebalance_without_moving_keys_is_allowed(self):
        service = _service()
        router = service.router
        # Nothing routed yet: no assignment can move.
        router.rebalance(3)
        # A key whose owner is 0 under both 2 and 4 shards is safe too.
        stable = next(
            k for k in (f"s{i}" for i in range(1000))
            if shard_for(k, 2) == shard_for(k, 4)
        )
        router.shard_of(stable)
        router.rebalance(4)


class TestAdmission:
    def test_shed_policy_drops_over_capacity(self):
        service = _service(router_capacity=2, admission="shed")
        router = service.router
        admitted = [router.submit_shard(0, make_payload(8)) for _ in range(5)]
        assert admitted == [True, True, False, False, False]
        assert router.offered[0] == 5
        assert router.admitted[0] == 2
        assert router.shed[0] == 3
        service.run_until_quiescent(timeout=1.0)
        assert len(router.completions[0]) == 2

    def test_delay_policy_retries_until_capacity_frees(self):
        service = _service(router_capacity=1, admission="delay")
        router = service.router
        router.deadline = 1.0
        for _ in range(4):
            router.submit_shard(0, make_payload(8))
        assert router.delayed[0] == 3
        assert service.run_until_quiescent(timeout=2.0)
        # Every parked op was eventually admitted and completed.
        assert router.shed[0] == 0
        assert router.admitted[0] == 4
        assert len(router.completions[0]) == 4

    def test_delay_policy_sheds_parked_ops_past_deadline(self):
        service = _service(router_capacity=1, admission="delay",
                           retry_delay=0.5)
        router = service.router
        router.deadline = 0.2  # shorter than one retry interval
        for _ in range(3):
            router.submit_shard(0, make_payload(8))
        service.run_until_quiescent(timeout=2.0)
        assert router.admitted[0] == 1
        assert router.shed[0] == 2
        assert router.pending() == 0

    def test_completion_measures_sojourn(self):
        service = _service()
        router = service.router
        router.submit_shard(1, make_payload(8))
        assert service.run_until_quiescent(timeout=1.0)
        ((arrival, sojourn),) = router.completions[1]
        assert arrival == 0.0
        assert sojourn > 0.0
        stats = router.shard_stats(1)
        assert stats["completed"] == 1.0
        assert stats["sojourn_p99_ms"] == pytest.approx(sojourn * 1e3)

    def test_routed_submit_lands_on_owner_shard(self):
        service = _service()
        router = service.router
        router.submit("C", make_payload(8))  # owner: shard 0
        router.submit("A", make_payload(8))  # owner: shard 1
        assert service.run_until_quiescent(timeout=1.0)
        assert [router.offered[0], router.offered[1]] == [1, 1]
        assert len(router.completions[0]) == 1
        assert len(router.completions[1]) == 1
