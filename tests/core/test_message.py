"""Tests for payloads, application messages, and indirect proposals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.identifiers import MESSAGE_ID_WIRE_SIZE, MessageId
from repro.core.message import APP_MESSAGE_HEADER_SIZE, AppMessage, make_payload
from repro.core.proposal import IndirectProposal


class TestPayload:
    def test_make_payload(self):
        p = make_payload(100, content={"op": "set"})
        assert p.size == 100
        assert p.content == {"op": "set"}

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            make_payload(-1)

    def test_zero_size_allowed(self):
        assert make_payload(0).size == 0


class TestAppMessage:
    def test_wire_size_adds_header(self):
        m = AppMessage(mid=MessageId(1, 1), sender=1, payload=make_payload(100))
        assert m.wire_size() == APP_MESSAGE_HEADER_SIZE + 100

    def test_messages_hashable_by_identity_fields(self):
        a = AppMessage(mid=MessageId(1, 1), sender=1, payload=make_payload(5))
        b = AppMessage(mid=MessageId(1, 1), sender=1, payload=make_payload(5))
        assert a == b
        assert len({a, b}) == 1

    @given(st.integers(0, 100_000))
    def test_wire_size_monotone_in_payload(self, size):
        m = AppMessage(mid=MessageId(1, 1), sender=1, payload=make_payload(size))
        assert m.wire_size() == APP_MESSAGE_HEADER_SIZE + size


class TestIndirectProposal:
    def test_holds_value_and_rcv(self):
        ids = frozenset({MessageId(1, 1), MessageId(2, 1)})
        prop = IndirectProposal(value=ids, rcv=lambda v: True)
        assert prop.value == ids
        assert prop.rcv(ids) is True

    def test_coerces_value_to_frozenset(self):
        prop = IndirectProposal(value={MessageId(1, 1)}, rcv=lambda v: True)  # type: ignore[arg-type]
        assert isinstance(prop.value, frozenset)

    def test_wire_size_counts_only_ids(self):
        """The rcv function never travels; only |v| identifiers do."""
        ids = frozenset({MessageId(1, i) for i in range(1, 8)})
        prop = IndirectProposal(value=ids, rcv=lambda v: True)
        assert prop.wire_size() == 7 * MESSAGE_ID_WIRE_SIZE

    def test_ordered_is_canonical(self):
        ids = frozenset({MessageId(2, 1), MessageId(1, 5)})
        prop = IndirectProposal(value=ids, rcv=lambda v: True)
        assert prop.ordered() == (MessageId(1, 5), MessageId(2, 1))

    def test_equality_ignores_rcv(self):
        ids = frozenset({MessageId(1, 1)})
        assert IndirectProposal(ids, lambda v: True) == IndirectProposal(
            ids, lambda v: False
        )
