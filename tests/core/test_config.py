"""Tests for SystemConfig quorum arithmetic and resilience predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.exceptions import ConfigurationError


class TestConstruction:
    def test_default_f_is_max_minority(self):
        assert SystemConfig(n=3).f == 1
        assert SystemConfig(n=4).f == 1
        assert SystemConfig(n=5).f == 2
        assert SystemConfig(n=7).f == 3

    def test_explicit_f(self):
        assert SystemConfig(n=5, f=1).f == 1

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=0)

    def test_rejects_f_out_of_range(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=3, f=3)
        with pytest.raises(ConfigurationError):
            SystemConfig(n=3, f=-2)

    def test_processes_are_one_based(self):
        assert SystemConfig(n=4).processes == (1, 2, 3, 4)

    def test_with_f(self):
        c = SystemConfig(n=7).with_f(1)
        assert (c.n, c.f) == (7, 1)


class TestQuorums:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (6, 4), (7, 4)]
    )
    def test_majority_quorum(self, n, expected):
        assert SystemConfig(n=n).majority_quorum == expected

    @pytest.mark.parametrize(
        "n,expected", [(3, 3), (4, 3), (5, 4), (6, 5), (7, 5), (9, 7)]
    )
    def test_two_thirds_quorum(self, n, expected):
        """⌈(2n+1)/3⌉ — Algorithm 3 line 22."""
        assert SystemConfig(n=n).two_thirds_quorum == expected

    @pytest.mark.parametrize("n,expected", [(3, 2), (4, 2), (5, 2), (7, 3), (9, 4)])
    def test_third_quorum(self, n, expected):
        """⌈(n+1)/3⌉ — Algorithm 3 line 28."""
        assert SystemConfig(n=n).third_quorum == expected

    @given(st.integers(min_value=1, max_value=500))
    def test_two_majorities_intersect(self, n):
        config = SystemConfig(n=n)
        assert 2 * config.majority_quorum > n

    @given(st.integers(min_value=1, max_value=500))
    def test_two_thirds_quorums_intersect_in_a_third(self, n):
        """Any two ⌈(2n+1)/3⌉-quorums share ⌈(n+1)/3⌉ processes — the
        fact the MR-indirect agreement proof rests on."""
        config = SystemConfig(n=n)
        overlap = 2 * config.two_thirds_quorum - n
        assert overlap >= config.third_quorum


class TestCoordinator:
    def test_rotates_round_robin(self):
        config = SystemConfig(n=3)
        assert [config.coordinator(r) for r in (1, 2, 3, 4)] == [2, 3, 1, 2]

    def test_single_process_group(self):
        config = SystemConfig(n=1)
        assert config.coordinator(1) == 1
        assert config.coordinator(17) == 1

    @given(st.integers(1, 30), st.integers(1, 1000))
    def test_coordinator_is_valid_process(self, n, r):
        config = SystemConfig(n=n)
        assert config.coordinator(r) in config.processes


class TestResiliencePredicates:
    def test_majority_holds(self):
        assert SystemConfig(n=5, f=2).majority_holds()
        assert not SystemConfig(n=4, f=2).majority_holds()
        assert SystemConfig(n=5, f=2).majority_holds(f=1)

    def test_third_holds(self):
        assert SystemConfig(n=4, f=1).third_holds()
        assert not SystemConfig(n=3, f=1).third_holds()
        assert SystemConfig(n=7, f=2).third_holds()
        assert not SystemConfig(n=7, f=3).third_holds()

    def test_stability_threshold(self):
        assert SystemConfig(n=5, f=2).stability_threshold() == 3
        assert SystemConfig(n=3, f=0).stability_threshold() == 1
