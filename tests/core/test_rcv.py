"""Tests for the ReceivedStore and the rcv predicate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.identifiers import MessageId
from repro.core.message import AppMessage, make_payload
from repro.core.rcv import ReceivedStore


def msg(origin: int, seq: int) -> AppMessage:
    return AppMessage(
        mid=MessageId(origin, seq), sender=origin, payload=make_payload(8)
    )


class TestReceivedStore:
    def test_add_and_lookup(self):
        store = ReceivedStore()
        m = msg(1, 1)
        assert store.add(m)
        assert store.has(m.mid)
        assert store.get(m.mid) is m
        assert m.mid in store
        assert len(store) == 1

    def test_add_is_idempotent(self):
        store = ReceivedStore()
        m = msg(1, 1)
        assert store.add(m)
        assert not store.add(m)
        assert len(store) == 1

    def test_get_missing_returns_none(self):
        assert ReceivedStore().get(MessageId(1, 1)) is None

    def test_snapshot_ids(self):
        store = ReceivedStore()
        store.add(msg(1, 1))
        store.add(msg(2, 3))
        assert store.snapshot_ids() == {MessageId(1, 1), MessageId(2, 3)}


class TestRcvPredicate:
    def test_rcv_true_when_all_present(self):
        store = ReceivedStore()
        store.add(msg(1, 1))
        store.add(msg(2, 1))
        assert store.rcv([MessageId(1, 1), MessageId(2, 1)])

    def test_rcv_false_on_any_missing(self):
        store = ReceivedStore()
        store.add(msg(1, 1))
        assert not store.rcv([MessageId(1, 1), MessageId(9, 9)])

    def test_rcv_true_on_empty_set(self):
        assert ReceivedStore().rcv([])

    def test_missing_reports_the_gap(self):
        store = ReceivedStore()
        store.add(msg(1, 1))
        want = [MessageId(1, 1), MessageId(3, 1), MessageId(4, 2)]
        assert store.missing(want) == {MessageId(3, 1), MessageId(4, 2)}

    def test_lookup_accounting_counts_probes(self):
        """The simulation charges CPU per probe; the counter must reflect
        exactly the probes performed (short-circuiting on a miss)."""
        store = ReceivedStore()
        store.add(msg(1, 1))
        store.add(msg(1, 2))
        assert store.lookup_count == 0
        store.rcv([MessageId(1, 1), MessageId(1, 2)])
        assert store.lookup_count == 2
        assert store.rcv_call_count == 1
        # Miss on the first probe stops the scan.
        store.rcv([MessageId(9, 9), MessageId(1, 1)])
        assert store.lookup_count == 3
        assert store.rcv_call_count == 2

    def test_plain_has_does_not_count(self):
        store = ReceivedStore()
        store.add(msg(1, 1))
        store.has(MessageId(1, 1))
        assert store.lookup_count == 0

    @given(
        st.sets(st.tuples(st.integers(1, 9), st.integers(1, 99)), max_size=25),
        st.sets(st.tuples(st.integers(1, 9), st.integers(1, 99)), max_size=25),
    )
    def test_rcv_equals_subset_check(self, have, want):
        """rcv(v) <=> v ⊆ received — the definitional property."""
        store = ReceivedStore()
        for origin, seq in have:
            store.add(msg(origin, seq))
        want_ids = [MessageId(o, s) for o, s in want]
        assert store.rcv(want_ids) == set(want_ids).issubset(store.snapshot_ids())
