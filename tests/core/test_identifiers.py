"""Tests for message identifiers and their canonical ordering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.identifiers import (
    MESSAGE_ID_WIRE_SIZE,
    MessageId,
    id_set_wire_size,
    order_id_set,
)

mids = st.builds(
    MessageId,
    origin=st.integers(min_value=1, max_value=50),
    seq=st.integers(min_value=1, max_value=10_000),
)


class TestMessageId:
    def test_equality_is_structural(self):
        assert MessageId(1, 7) == MessageId(1, 7)
        assert MessageId(1, 7) != MessageId(2, 7)
        assert MessageId(1, 7) != MessageId(1, 8)

    def test_hashable_and_usable_in_sets(self):
        s = {MessageId(1, 1), MessageId(1, 1), MessageId(2, 1)}
        assert len(s) == 2

    def test_ordering_is_lexicographic(self):
        assert MessageId(1, 9) < MessageId(2, 1)
        assert MessageId(1, 1) < MessageId(1, 2)

    def test_wire_size_is_constant(self):
        assert MessageId(1, 1).wire_size() == MESSAGE_ID_WIRE_SIZE
        assert MessageId(999, 10**9).wire_size() == MESSAGE_ID_WIRE_SIZE

    def test_str_is_compact(self):
        assert str(MessageId(3, 42)) == "m3.42"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            MessageId(1, 1).seq = 5  # type: ignore[misc]


class TestOrderIdSet:
    def test_orders_sorted(self):
        ids = {MessageId(2, 1), MessageId(1, 2), MessageId(1, 1)}
        assert order_id_set(ids) == (
            MessageId(1, 1),
            MessageId(1, 2),
            MessageId(2, 1),
        )

    def test_empty(self):
        assert order_id_set([]) == ()

    @given(st.frozensets(mids, max_size=30))
    def test_deterministic_regardless_of_input_order(self, ids):
        """Line 20 of Algorithm 1: every process must derive the same
        sequence from the same decided set."""
        as_list = sorted(ids, key=lambda m: (m.seq, m.origin))  # scrambled
        assert order_id_set(ids) == order_id_set(as_list)
        assert order_id_set(ids) == tuple(sorted(ids))

    @given(st.frozensets(mids, max_size=30))
    def test_permutation_preserving(self, ids):
        assert set(order_id_set(ids)) == set(ids)
        assert len(order_id_set(ids)) == len(ids)


class TestIdSetWireSize:
    def test_scales_with_cardinality_not_payload(self):
        """The paper's whole argument: identifier traffic is constant per
        message regardless of payload size."""
        ids = [MessageId(1, i) for i in range(10)]
        assert id_set_wire_size(ids) == 10 * MESSAGE_ID_WIRE_SIZE

    def test_empty_set_is_free(self):
        assert id_set_wire_size([]) == 0

    @given(st.frozensets(mids, max_size=100))
    def test_linear_in_cardinality(self, ids):
        assert id_set_wire_size(ids) == len(ids) * MESSAGE_ID_WIRE_SIZE
