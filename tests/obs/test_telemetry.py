"""Telemetry registry, queue-observer counters, and the sampler.

The load-bearing claims: the sampler reads *live* engine state (the
queue's sequence counter, not the drain-exit-flushed
``events_executed``), the observer slot refuses double occupancy, and
a sampled run is deterministic — two identical specs produce
bit-identical series.
"""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.obs.telemetry import (
    QueueTelemetry,
    Telemetry,
    TelemetrySampler,
    TimeSeries,
    _percentile,
    attach_queue_telemetry,
)
from repro.sim.engine import Engine


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.5) == 2.0
        assert _percentile(values, 0.99) == 4.0
        assert _percentile([7.5], 0.99) == 7.5


class TestRegistry:
    def test_series_created_on_first_record(self):
        telemetry = Telemetry()
        telemetry.record("a.depth", 0.1, 3.0)
        telemetry.record("a.depth", 0.2, 5.0)
        series = telemetry.get("a.depth")
        assert isinstance(series, TimeSeries)
        assert list(series) == [(0.1, 3.0), (0.2, 5.0)]
        assert series.last() == 5.0
        assert len(series) == 2

    def test_names_and_items_sorted(self):
        telemetry = Telemetry()
        for name in ("z", "a", "m"):
            telemetry.record(name, 0.0, 1.0)
        assert telemetry.names() == ("a", "m", "z")
        assert [name for name, _ in telemetry.items()] == ["a", "m", "z"]
        assert len(telemetry) == 3

    def test_get_missing_is_none(self):
        assert Telemetry().get("nope") is None


class TestQueueObserver:
    def test_counts_pushes_and_cancels(self):
        engine = Engine()
        counters = QueueTelemetry()
        attach_queue_telemetry(engine, counters)
        engine.schedule(0.1, lambda: None)
        handle = engine.schedule(0.2, lambda: None)
        handle.cancel()
        assert counters.pushes == 2
        assert counters.cancels == 1
        # The fused drain never consults the observer — by design.
        engine.run_until_idle()
        assert counters.fires == 0

    def test_occupied_slot_is_refused(self):
        engine = Engine()
        attach_queue_telemetry(engine, QueueTelemetry())
        with pytest.raises(ConfigurationError, match="observer"):
            attach_queue_telemetry(engine, QueueTelemetry())


class TestSampler:
    def test_uninstalled_sampler_schedules_nothing(self):
        engine = Engine()
        telemetry = Telemetry()
        TelemetrySampler(engine, telemetry)
        engine.schedule(0.5, lambda: None)
        engine.run_until_idle()
        assert len(telemetry) == 0

    def test_install_validates(self):
        engine = Engine()
        sampler = TelemetrySampler(engine, Telemetry())
        with pytest.raises(ConfigurationError, match="period"):
            sampler.install(period=0.0, until=1.0)
        sampler.install(period=0.1, until=1.0)
        with pytest.raises(ConfigurationError, match="installed"):
            sampler.install(period=0.1, until=1.0)

    def test_samples_live_queue_counters(self):
        # The regression this pins: ``engine.events_executed`` is
        # flushed only when the drain exits, so sampling it mid-run
        # would record stale zeros.  ``queue.scheduled`` (the queue's
        # live sequence counter) must move between ticks instead.
        engine = Engine()
        telemetry = Telemetry()
        sampler = TelemetrySampler(engine, telemetry)
        sampler.install(period=0.01, until=0.1)

        def churn() -> None:
            if engine.now < 0.09:
                engine.schedule(0.001, churn)

        churn()
        engine.run_until_idle()
        scheduled = telemetry.get("queue.scheduled")
        assert scheduled is not None and len(scheduled) >= 9
        values = scheduled.values
        assert values[0] > 0.0
        assert values[-1] > values[0]  # live, not a stale constant
        per_tick = telemetry.get("queue.scheduled_per_tick").values
        assert any(v > 0.0 for v in per_tick)
        depth = telemetry.get("queue.depth")
        assert len(depth) == len(scheduled)

    def test_sampling_cadence_and_horizon(self):
        engine = Engine()
        telemetry = Telemetry()
        sampler = TelemetrySampler(engine, telemetry)
        sampler.install(period=0.02, until=0.1)
        engine.schedule(1.0, lambda: None)  # keep the run alive past it
        engine.run_until_idle()
        times = telemetry.get("queue.depth").times
        assert times == pytest.approx([0.02, 0.04, 0.06, 0.08, 0.1])

    def test_sampled_run_is_deterministic(self):
        from repro.harness.experiment import ExperimentSpec
        from repro.net.setups import SETUP_1
        from repro.obs.session import observe_experiment
        from repro.stack.builder import StackSpec

        spec = ExperimentSpec(
            name="det",
            stack=StackSpec(n=3, seed=5, abcast="indirect",
                            consensus="ct-indirect", rb="sender",
                            params=SETUP_1),
            throughput=200.0,
            payload=64,
            duration=0.2,
            warmup=0.05,
            drain=0.4,
        )
        first = observe_experiment(spec, period=0.01)
        second = observe_experiment(spec, period=0.01)
        assert first.telemetry.names() == second.telemetry.names()
        for name, series in first.telemetry.items():
            other = second.telemetry.get(name)
            assert series.times == other.times, name
            assert series.values == other.values, name
        assert first.spans == second.spans
        assert len(first.telemetry) > 0 and len(first.spans) > 0
