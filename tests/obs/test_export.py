"""Chrome trace rendering, the validator, and the ResultSet tables.

The validator is what CI trusts: every exported trace must pass it, so
its failure modes (missing keys, non-monotone timestamps, mismatched
B/E nesting) are each pinned here against hand-built documents.
"""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    spans_result_set,
    telemetry_result_set,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import Span
from repro.obs.telemetry import Telemetry


def span(sid, parent, kind, name, process, start, end, group=0):
    return Span(sid=sid, parent=parent, kind=kind, name=name,
                process=process, group=group, start=start, end=end)


FOREST = (
    span(0, None, "abcast", "m0.1", 0, 0.00, 0.10),
    span(1, 0, "adeliver", "adeliver p0", 0, 0.02, 0.06),
    span(2, None, "consensus", "consensus k=0", 0, 0.01, 0.09),
    span(3, 2, "round", "round 1", 0, 0.01, 0.05),
    span(4, None, "crash", "crash p2", 2, 0.04, 0.04),
)


class TestChromeTrace:
    def test_renders_and_validates(self):
        doc = chrome_trace(FOREST)
        validate_chrome_trace(doc)
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert {"B", "E", "M"} <= phases
        assert "i" in phases  # the zero-width crash marker
        assert doc["displayTimeUnit"] == "ms"

    def test_ts_is_microseconds(self):
        doc = chrome_trace(FOREST)
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        assert any(e["ts"] == pytest.approx(20000.0) for e in begins)

    def test_single_group_process_is_named_system(self):
        doc = chrome_trace(FOREST)
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"system"}

    def test_multi_group_processes_and_overrides(self):
        forest = FOREST + (span(5, None, "abcast", "m1.1", 0, 0.0, 0.1,
                                group=1),)
        doc = chrome_trace(forest, group_names={1: "shard B"})
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"group 0", "shard B"}

    def test_overlapping_spans_spill_to_sublanes(self):
        # Two same-lane spans that overlap without nesting cannot share
        # a B/E stack; the second must land on a numbered sub-lane.
        forest = (
            span(0, None, "abcast", "m0.1", 0, 0.00, 0.10),
            span(1, None, "abcast", "m0.2", 0, 0.05, 0.20),
        )
        doc = chrome_trace(forest)
        validate_chrome_trace(doc)
        thread_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {"p0 abcast", "p0 abcast ·2"}

    def test_nested_spans_share_a_lane(self):
        forest = (
            span(0, None, "abcast", "m0.1", 0, 0.00, 0.10),
            span(1, 0, "abcast", "inner", 0, 0.02, 0.06),
        )
        doc = chrome_trace(forest)
        tids = {
            e["tid"] for e in doc["traceEvents"] if e["ph"] in ("B", "E")
        }
        assert len(tids) == 1

    def test_telemetry_becomes_counter_tracks(self):
        telemetry = Telemetry()
        telemetry.record("queue.depth", 0.01, 4.0)
        telemetry.record("queue.depth", 0.02, 7.0)
        doc = chrome_trace(FOREST, telemetry=telemetry)
        validate_chrome_trace(doc)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert [c["args"]["value"] for c in counters] == [4.0, 7.0]
        span_pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "B"}
        assert all(c["pid"] not in span_pids for c in counters)

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), FOREST)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))
        validate_chrome_trace(loaded)


class TestValidator:
    def _minimal(self):
        return {
            "traceEvents": [
                {"name": "x", "ph": "B", "ts": 1.0, "pid": 0, "tid": 0},
                {"name": "x", "ph": "E", "ts": 2.0, "pid": 0, "tid": 0},
            ]
        }

    def test_accepts_minimal_document(self):
        validate_chrome_trace(self._minimal())

    def test_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace([])

    def test_rejects_missing_key(self):
        doc = self._minimal()
        del doc["traceEvents"][0]["ts"]
        with pytest.raises(ValueError, match="missing 'ts'"):
            validate_chrome_trace(doc)

    def test_rejects_non_monotone_ts(self):
        doc = self._minimal()
        doc["traceEvents"][0]["ts"] = 5.0
        with pytest.raises(ValueError, match="monotone"):
            validate_chrome_trace(doc)

    def test_rejects_unmatched_end(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 1.0, "pid": 0, "tid": 0},
        ]}
        with pytest.raises(ValueError, match="empty lane"):
            validate_chrome_trace(doc)

    def test_rejects_wrong_name_end(self):
        doc = self._minimal()
        doc["traceEvents"][1]["name"] = "y"
        with pytest.raises(ValueError, match="does not match"):
            validate_chrome_trace(doc)

    def test_rejects_unclosed_begin(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 1.0, "pid": 0, "tid": 0},
        ]}
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(doc)

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "Q", "ts": 1.0, "pid": 0, "tid": 0},
        ]}
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(doc)


class TestResultSets:
    def test_spans_table_shape(self):
        table = spans_result_set(FOREST)
        assert table.column("sid") == (0, 1, 2, 3, 4)
        assert table.column("kind")[4] == "crash"
        assert table.column("duration")[0] == pytest.approx(0.10)
        csv = table.to_csv()
        assert csv.splitlines()[0].startswith("sid,parent,kind,name")
        assert len(csv.splitlines()) == 1 + len(FOREST)

    def test_telemetry_table_is_long_format(self):
        telemetry = Telemetry()
        telemetry.record("b", 0.1, 1.0)
        telemetry.record("a", 0.1, 2.0)
        telemetry.record("a", 0.2, 3.0)
        table = telemetry_result_set(telemetry)
        assert table.column("series") == ("a", "a", "b")
        assert table.column("value") == (2.0, 3.0, 1.0)
        assert json.loads(table.to_json())
