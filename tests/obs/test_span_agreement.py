"""Full-trace vs metrics-mode span agreement (the obs acceptance test).

The :class:`~repro.obs.spans.SpanRecorder` rides the same
:class:`~repro.metrics.probes.ProbeTap` seam as every built-in probe,
so the derived span forest must be **bit-identical** whether the run
retained a checkable event trace (``trace_mode="full"``) or nothing at
all (``trace_mode="metrics"``).  Asserted on the four golden stacks of
the paper's evaluation, mirroring
``tests/harness/test_probe_agreement.py``.
"""

import pytest

from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.net.setups import SETUP_1, SETUP_2
from repro.obs.spans import SpanRecorder, check_well_formed
from repro.stack.builder import StackSpec

#: The four golden stacks of the evaluation (Figures 1-7).
GOLDEN_STACKS = {
    "indirect": dict(abcast="indirect", consensus="ct-indirect",
                     rb="sender", params=SETUP_1),
    "on-messages": dict(abcast="on-messages", consensus="ct",
                        rb="sender", params=SETUP_1),
    "faulty-ids": dict(abcast="faulty-ids", consensus="ct",
                       rb="sender", params=SETUP_1),
    "urb-ids": dict(abcast="urb-ids", consensus="ct",
                    rb="flood", params=SETUP_2),
}


def run_pair(stack_kwargs):
    base = dict(
        stack=StackSpec(n=3, seed=5, **stack_kwargs),
        throughput=200.0,
        payload=64,
        duration=0.3,
        warmup=0.05,
        drain=0.5,
    )
    full_recorder = SpanRecorder()
    full = run_experiment(
        ExperimentSpec(name="full", **base),
        extra_probes=(("spans", full_recorder),),
    )
    metrics_recorder = SpanRecorder()
    metrics = run_experiment(
        ExperimentSpec(
            name="metrics", trace_mode="metrics", safety_checks=False, **base
        ),
        extra_probes=(("spans", metrics_recorder),),
    )
    return (full, full_recorder), (metrics, metrics_recorder)


class TestSpanAgreement:
    @pytest.mark.parametrize("stack_name", sorted(GOLDEN_STACKS))
    def test_span_forest_is_bit_identical_across_modes(self, stack_name):
        (full, full_rec), (metrics, metrics_rec) = run_pair(
            GOLDEN_STACKS[stack_name]
        )
        # Span is a frozen dataclass: tuple equality is field-exact on
        # every sid, parent link, kind, label and float endpoint.
        assert full_rec.spans == metrics_rec.spans
        # The summary metric the tap publishes agrees too (MetricValue
        # equality covers every field).
        assert full.metrics["spans"] == metrics.metrics["spans"]
        # And the agreed-on forest is structurally sound.
        check_well_formed(full_rec.spans)

    @pytest.mark.parametrize("stack_name", sorted(GOLDEN_STACKS))
    def test_forest_covers_the_protocol_layers(self, stack_name):
        (_, recorder), _ = run_pair(GOLDEN_STACKS[stack_name])
        kinds = {span.kind for span in recorder.spans}
        assert "abcast" in kinds
        assert "adeliver" in kinds
        assert "consensus" in kinds
        assert "round" in kinds
        # Every adeliver leg nests under an abcast root; every round
        # under a consensus instance.
        by_sid = {span.sid: span for span in recorder.spans}
        for span in recorder.spans:
            if span.kind == "adeliver":
                assert by_sid[span.parent].kind == "abcast"
            if span.kind == "round":
                assert by_sid[span.parent].kind == "consensus"

    def test_crash_markers_appear_for_faulty_stack(self):
        from repro.explore.executor import replay
        from repro.explore.runner import explore_spec

        spec = explore_spec("faulty", seed=0)
        system, _record = replay(spec, "5:c2")
        recorder = SpanRecorder.from_trace(system.trace, system)
        kinds = {span.kind for span in recorder.spans}
        assert "crash" in kinds
        crash = next(s for s in recorder.spans if s.kind == "crash")
        assert crash.start == crash.end  # renders as an instant
        check_well_formed(recorder.spans)


class TestWellFormedness:
    def _span(self, **kwargs):
        from repro.obs.spans import Span

        base = dict(sid=0, parent=None, kind="abcast", name="m0.1",
                    process=0, group=0, start=0.0, end=1.0)
        base.update(kwargs)
        return Span(**base)

    def test_accepts_a_proper_forest(self):
        root = self._span()
        child = self._span(sid=1, parent=0, kind="adeliver", start=0.2,
                           end=0.8)
        check_well_formed((root, child))

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends before"):
            check_well_formed((self._span(start=2.0, end=1.0),))

    def test_rejects_dangling_parent(self):
        with pytest.raises(ValueError, match="parent"):
            check_well_formed((self._span(sid=1, parent=99),))

    def test_rejects_child_escaping_parent_interval(self):
        root = self._span()
        escapee = self._span(sid=1, parent=0, start=0.5, end=1.5)
        with pytest.raises(ValueError, match="escapes"):
            check_well_formed((root, escapee))

    def test_rejects_duplicate_sids(self):
        with pytest.raises(ValueError, match="duplicate"):
            check_well_formed((self._span(), self._span()))
