"""Fine-grained tests of the Algorithm-1 reduction mechanics.

Out-of-order decision application, the adeliver gate, batch caps, the
on-messages decision short-circuit, and the bookkeeping invariants the
Uniform-integrity guard protects.
"""

import pytest

from repro import StackSpec, build_system, make_payload
from repro.core.exceptions import ConfigurationError
from repro.core.identifiers import MessageId, order_id_set


def fresh_system(**kwargs):
    defaults = dict(n=3, abcast="indirect", consensus="ct-indirect", seed=0)
    defaults.update(kwargs)
    return build_system(StackSpec(**defaults))


class TestDecisionApplication:
    def test_out_of_order_decisions_buffer_until_gap_closes(self):
        system = fresh_system()
        abcast = system.abcasts[1]
        v1 = frozenset({MessageId(2, 1)})
        v2 = frozenset({MessageId(3, 1)})
        # Simulate flooded decisions arriving out of order.
        abcast._on_decide(2, v2)
        assert abcast.next_instance == 1
        assert abcast.backlog()["pending_decisions"] == 1
        abcast._on_decide(1, v1)
        assert abcast.next_instance == 3
        assert abcast.backlog()["pending_decisions"] == 0
        # Order in the delivery queue follows instance order then id order.
        assert list(abcast.ordered) == list(order_id_set(v1)) + list(order_id_set(v2))

    def test_decided_ids_removed_from_unordered(self):
        system = fresh_system()
        abcast = system.abcasts[1]
        mid = MessageId(1, 1)
        abcast.unordered.add(mid)
        abcast._on_decide(1, frozenset({mid}))
        assert mid not in abcast.unordered
        assert mid in abcast._ordered_set

    def test_duplicate_ordering_raises_protocol_violation(self):
        from repro.core.exceptions import ProtocolViolationError
        system = fresh_system()
        abcast = system.abcasts[1]
        mid = MessageId(1, 1)
        abcast._on_decide(1, frozenset({mid}))
        with pytest.raises(ProtocolViolationError, match="ordered twice"):
            abcast._on_decide(2, frozenset({mid}))


class TestAdeliverGate:
    def test_head_of_line_blocks_until_message_received(self):
        """Line 23: ordered-but-not-received heads block delivery of
        everything behind them.  Driven manually (no engine run) so the
        injected decision cannot race a live consensus instance."""
        system = fresh_system(seed=9)
        a1 = system.abcasts[1]
        held = a1.abroadcast(make_payload(1))  # local rdeliver is synchronous
        assert a1.store.has(held.mid)
        missing = MessageId(2, 1)
        a1._on_decide(1, frozenset({missing, held.mid}))
        # held = m1.1 sorts before missing = m2.1: held is delivered,
        # missing blocks at the head of the remaining queue.
        assert held.mid in a1.adelivered
        assert missing in a1._ordered_set
        assert a1.backlog()["ordered_awaiting_message"] == 1
        # The blocked head clears the moment its message shows up.
        from repro.core.message import AppMessage
        a1._on_rdeliver(
            AppMessage(mid=missing, sender=2, payload=make_payload(1))
        )
        assert missing in a1.adelivered
        assert a1.backlog()["ordered_awaiting_message"] == 0

    def test_blocked_message_delivered_when_copy_arrives(self):
        system = fresh_system()
        a1 = system.abcasts[1]
        a2 = system.abcasts[2]
        m = a2.abroadcast(make_payload(1))
        system.run_until_delivered(count=1, timeout=1.0)
        assert m.mid in a1.adelivered


class TestBatchCap:
    def test_cap_limits_proposal_size(self):
        system = fresh_system(batch_cap=2, seed=4)
        a1 = system.abcasts[1]
        for _ in range(6):
            a1.abroadcast(make_payload(1))
        system.run(until=1.0, max_events=2_000_000)
        for k in system.trace.instances():
            first = system.trace.first_decision(k)
            assert len(first.value) <= 2

    def test_cap_prefers_oldest_ids(self):
        system = fresh_system(batch_cap=1)
        abcast = system.abcasts[1]
        abcast.unordered.update({MessageId(2, 5), MessageId(1, 1), MessageId(2, 1)})
        assert abcast._batch() == frozenset({MessageId(1, 1)})

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            fresh_system(batch_cap=0)

    def test_all_messages_eventually_ordered_despite_cap(self):
        system = fresh_system(batch_cap=1, seed=2)
        a1 = system.abcasts[1]
        for _ in range(5):
            a1.abroadcast(make_payload(1))
        assert system.run_until_delivered(count=5, timeout=3.0)


class TestOnMessagesShortCircuit:
    def test_decision_carries_payloads_no_diffusion_wait(self):
        """With full messages inside consensus, a process that never
        r-delivered the payload still adelivers from the decision."""
        system = build_system(
            StackSpec(n=3, abcast="on-messages", consensus="ct", seed=1)
        )
        a3 = system.abcasts[3]
        m = system.abcasts[1].abroadcast(make_payload(500, content="bulk"))
        system.run_until_delivered(count=1, timeout=1.0)
        assert m.mid in a3.adelivered
        assert a3.store.get(m.mid).payload.content == "bulk"

    def test_message_set_codec_enforced(self):
        # The builder always pairs on-messages with MESSAGE_SET_CODEC;
        # constructing the class with the wrong codec must fail loudly.
        from repro.abcast.on_messages import OnMessagesAtomicBroadcast
        from repro.consensus.base import ID_SET_CODEC
        from repro.consensus.chandra_toueg import ChandraTouegConsensus
        from tests.helpers import make_fabric
        from repro.broadcast.flood import FloodReliableBroadcast

        fabric = make_fabric(3)
        transport = fabric.transports[1]
        broadcast = FloodReliableBroadcast(transport)
        consensus = ChandraTouegConsensus(
            transport, fabric.config, fabric.detectors[1], ID_SET_CODEC
        )
        with pytest.raises(ConfigurationError, match="MESSAGE_SET_CODEC"):
            OnMessagesAtomicBroadcast(transport, broadcast, consensus, fabric.config)
