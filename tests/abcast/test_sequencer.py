"""Scenario tests for the fixed-sequencer atomic broadcast baseline.

Acceptance criteria of the registry tentpole: the sequencer stack
passes the ``checkers/abcast.py`` ordering/validity checkers under
crash and partition scenarios — including a crash of the sequencer
itself with FD-driven epoch handover — and compares against the
indirect stack through the ordinary sweep pipeline.
"""

import pytest

from repro import (
    CrashSchedule,
    PartitionWindow,
    StackSpec,
    build_system,
    check_abcast,
    make_payload,
)
from repro.abcast.sequencer import SequencerAtomicBroadcast
from repro.core.exceptions import ConfigurationError


def spec(n=3, **overrides):
    defaults = dict(
        n=n, abcast="sequencer", consensus="none", network="constant",
        constant_latency=2e-4, fd_detection_delay=5e-3,
    )
    defaults.update(overrides)
    return StackSpec(**defaults)


def send_burst(system, schedule):
    """Schedule ``(pid, time)`` abroadcasts; returns the count per pid."""
    counts: dict[int, int] = {}
    for pid, at in schedule:
        counts[pid] = counts.get(pid, 0) + 1
        system.processes[pid].schedule_at(
            at, lambda p=pid: system.abcasts[p].abroadcast(make_payload(16))
        )
    return counts


class TestFailureFree:
    def test_total_order_across_processes(self):
        system = build_system(spec())
        send_burst(system, [(1, 0.001), (2, 0.0012), (3, 0.0013),
                            (2, 0.004), (1, 0.0041)])
        assert system.run_until_delivered(count=5, timeout=2.0)
        check_abcast(system.trace, system.config)
        reference = system.trace.adelivery_sequence(1)
        assert len(reference) == 5
        for pid in (2, 3):
            assert system.trace.adelivery_sequence(pid) == reference

    def test_epoch0_sequencer_is_lowest_pid(self):
        system = build_system(spec())
        abcast = system.abcasts[1]
        assert isinstance(abcast, SequencerAtomicBroadcast)
        assert abcast.sequencer_of(0) == 1
        assert abcast.is_active_sequencer()
        assert not system.abcasts[2].is_active_sequencer()

    def test_heartbeat_fd_variant_delivers(self):
        system = build_system(spec(fd="heartbeat"))
        send_burst(system, [(2, 0.01), (3, 0.02)])
        assert system.run_until_delivered(count=2, timeout=2.0)
        check_abcast(system.trace, system.config)

    def test_bad_resend_interval_rejected(self):
        system = build_system(spec())
        with pytest.raises(ConfigurationError):
            SequencerAtomicBroadcast(
                system.transports[1], system.detectors[1], system.config,
                resend_interval=0.0,
            )


class TestSequencerCrashHandover:
    def test_sequencer_crash_hands_over_and_keeps_ordering(self):
        system = build_system(spec(), CrashSchedule.single(1, 0.010))
        send_burst(system, [
            (1, 0.001), (2, 0.002), (3, 0.003),       # before the crash
            (2, 0.020), (3, 0.025), (2, 0.200),       # across the handover
        ])
        system.run(until=3.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        # p2 (next in rank) took over; survivors share one sequence of
        # everything the correct senders broadcast.
        assert system.abcasts[2].epoch >= 1
        assert system.abcasts[2].is_active_sequencer()
        seq2 = system.trace.adelivery_sequence(2)
        assert seq2 == system.trace.adelivery_sequence(3)
        survivors_sent = {
            e.message.mid for e in system.trace.abroadcasts()
            if e.message.mid.origin != 1
        }
        assert survivors_sent <= set(seq2)

    def test_sequencer_crash_with_lost_socket_buffers(self):
        """Orderings queued at the crashing sequencer die with it; the
        senders' retry timers re-forward to the new sequencer."""
        system = build_system(
            spec(drop_in_flight_on_crash=True),
            CrashSchedule.single(1, 0.0005),
        )
        send_burst(system, [(2, 0.0001), (3, 0.0002), (2, 0.050)])
        system.run(until=3.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        seq2 = system.trace.adelivery_sequence(2)
        assert len(seq2) == 3
        assert seq2 == system.trace.adelivery_sequence(3)

    @pytest.mark.parametrize("first_sender", [2, 3])
    def test_renumbering_cannot_contradict_sequencer_deliveries(
        self, first_sender
    ):
        """The sequencer assigns two forwarded messages and dies before
        any order frame escapes.  Survivors renumber the messages via
        their retry timers — in an order that need not match the dead
        sequencer's assignment order (both send interleavings are
        exercised).  The sequencer must therefore not have adelivered
        its unechoed assignments: it waits for the first relay echo."""
        second_sender = 5 - first_sender
        system = build_system(
            spec(drop_in_flight_on_crash=True),
            CrashSchedule.single(1, 0.0005),
        )
        send_burst(system, [
            (first_sender, 0.0001), (second_sender, 0.0002),
            (2, 0.050),
        ])
        system.run(until=3.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        # The unstable assignments were never delivered at p1 ...
        assert system.trace.adelivery_sequence(1) == []
        # ... and both survivors converge on one renumbered order.
        seq2 = system.trace.adelivery_sequence(2)
        assert len(seq2) == 3
        assert seq2 == system.trace.adelivery_sequence(3)

    def test_sequencer_delivers_own_assignment_after_first_echo(self):
        system = build_system(spec())
        send_burst(system, [(1, 0.001)])
        # One one-way latency to fan out + one back for the echo, plus
        # scheduling slack: the sequencer's own delivery needs a round
        # trip, not zero time.
        system.run(until=0.0011, max_events=100_000)
        assert system.abcasts[1].delivered_count() == 0
        assert system.run_until_delivered(count=1, timeout=1.0)
        check_abcast(system.trace, system.config)

    def test_double_crash_walks_down_the_rank(self):
        """p1 then p2 crash: p3 ends up sequencer of a later epoch."""
        system = build_system(
            spec(n=4),
            CrashSchedule.of((1, 0.010), (2, 0.030)),
        )
        send_burst(system, [(3, 0.001), (4, 0.002), (3, 0.060), (4, 0.200)])
        system.run(until=3.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        assert system.abcasts[3].is_active_sequencer()
        seq3 = system.trace.adelivery_sequence(3)
        assert seq3 == system.trace.adelivery_sequence(4)
        assert len(seq3) == 4

    def test_non_sequencer_crash_needs_no_handover(self):
        system = build_system(spec(), CrashSchedule.single(3, 0.010))
        send_burst(system, [(1, 0.001), (2, 0.002), (1, 0.050)])
        system.run(until=2.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        assert system.abcasts[1].epoch == 0
        assert system.abcasts[1].is_active_sequencer()
        assert len(system.trace.adelivery_sequence(1)) == 3


class TestPartitions:
    def test_minority_heals_after_partition_window(self):
        """p3 is cut off from the sequencer; sync/repair catches it up."""
        window = PartitionWindow(start=0.005, end=0.100, groups=((1, 2), (3,)))
        system = build_system(spec(faults=(window,)))
        send_burst(system, [(1, 0.001), (2, 0.010), (1, 0.050), (3, 0.020)])
        system.run(until=3.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        seq1 = system.trace.adelivery_sequence(1)
        assert len(seq1) == 4  # p3's message lands after the heal
        assert system.trace.adelivery_sequence(3) == seq1

    def test_sequencer_isolated_then_healed(self):
        """The sequencer itself is partitioned away (no crash, oracle FD
        stays quiet): the group stalls, then drains after the heal."""
        window = PartitionWindow(start=0.004, end=0.150, groups=((1,), (2, 3)))
        system = build_system(spec(faults=(window,)))
        send_burst(system, [(2, 0.001), (3, 0.010), (2, 0.080)])
        system.run(until=3.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        for pid in (1, 2, 3):
            assert len(system.trace.adelivery_sequence(pid)) == 3


class TestThroughTheSweepPipeline:
    def test_sequencer_vs_indirect_through_run_suite(self, tmp_path):
        """The baseline comparison the registry exists for: sequencer
        and indirect stacks side by side in one closed-loop sweep grid,
        through the ordinary cache/pool pipeline."""
        from repro.harness.runner import run_suite
        from repro.harness.suite import SweepSpec

        sweep = SweepSpec(
            name="seq-vs-indirect",
            variants=(
                ("sequencer", spec(network="contention")),
                ("indirect", StackSpec(n=3, abcast="indirect",
                                       consensus="ct-indirect", rb="sender")),
            ),
            throughputs=(100.0,),
            payloads=(64,),
            target_messages=20,
            warmup=0.02,
            drain=1.0,
            workload="closed-loop",
        )
        suite = run_suite(sweep, cache_dir=tmp_path, processes=2)
        assert (suite.cache_hits, suite.cache_misses) == (0, 2)
        by_name = suite.by_name()
        seq = by_name["seq-vs-indirect/sequencer n=3 100msg/s 64B seed=0"]
        ind = by_name["seq-vs-indirect/indirect n=3 100msg/s 64B seed=0"]
        for result in (seq, ind):
            assert result.sent > 0
            assert result.undelivered == 0
            assert result.mean_latency_ms > 0
        # Failure-free, the sequencer orders in one hop + fan-out: it
        # must beat the consensus stack's multi-round latency.
        assert seq.mean_latency_ms < ind.mean_latency_ms
        # Identical grid re-run: served from cache, identical numbers.
        again = run_suite(sweep, cache_dir=tmp_path, processes=2)
        assert (again.cache_hits, again.cache_misses) == (2, 0)
        assert again.results[0].latency == suite.results[0].latency
