"""Property-based full-stack tests.

Hypothesis randomizes the stack variant, group size, workload, crash
schedule (within the resilience bound) and seed; after every run the
complete atomic-broadcast property set must hold, and for the indirect
stacks the indirect-consensus No loss / v-stability obligations as well.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CrashSchedule, StackSpec, SymmetricWorkload, build_system
from repro.checkers.abcast import AbcastChecker
from repro.checkers.broadcast import BroadcastChecker
from repro.checkers.consensus import ConsensusChecker

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

CORRECT_STACKS = [
    ("indirect", "ct-indirect"),
    ("indirect", "mr-indirect"),
    ("urb-ids", "ct"),
    ("on-messages", "ct"),
]


@st.composite
def full_stack_scenario(draw):
    abcast, consensus = draw(st.sampled_from(CORRECT_STACKS))
    n = draw(st.integers(3, 5))
    rb = draw(st.sampled_from(["flood", "sender"]))
    if abcast == "urb-ids":
        rb = "flood"
    seed = draw(st.integers(0, 10_000))
    payload = draw(st.integers(1, 2000))
    throughput = draw(st.sampled_from([40.0, 120.0, 300.0]))
    spec = StackSpec(
        n=n, abcast=abcast, consensus=consensus, rb=rb, seed=seed,
        fd_detection_delay=10e-3,
    )
    # Crash up to f processes (per the *selected algorithm's* bound,
    # which build_system derives as the default f).
    from repro.stack.layers import CONSENSUS
    from repro.core.config import SystemConfig
    bound = CONSENSUS.get(consensus)["cls"].resilience_bound(SystemConfig(n=n))
    crash_count = draw(st.integers(0, bound))
    pids = draw(
        st.lists(st.integers(1, n), min_size=crash_count,
                 max_size=crash_count, unique=True)
    )
    times = draw(
        st.lists(st.floats(0.01, 0.3), min_size=crash_count,
                 max_size=crash_count)
    )
    return spec, tuple(zip(pids, times)), throughput, payload


@SLOW
@given(full_stack_scenario())
def test_correct_stacks_hold_all_properties(scenario):
    spec, crashes, throughput, payload = scenario
    system = build_system(spec, CrashSchedule.of(*crashes))
    SymmetricWorkload(
        system, throughput=throughput, payload_size=payload, duration=0.3
    ).install()
    system.run(until=6.0, max_events=10_000_000)

    AbcastChecker(system.trace, system.config).check_all()
    BroadcastChecker(system.trace, system.config).check_all(
        uniform=(spec.abcast == "urb-ids")
    )
    consensus_checks = dict(no_loss=False, v_stability=False)
    if spec.consensus.endswith("indirect"):
        consensus_checks = dict(no_loss=True, v_stability=True)
    ConsensusChecker(system.trace, system.config).check_all(**consensus_checks)


@SLOW
@given(
    seed=st.integers(0, 10_000),
    throughput=st.sampled_from([100.0, 600.0]),
    payload=st.integers(1, 3000),
)
def test_faulty_stack_is_safe_without_crashes(seed, throughput, payload):
    """Without crashes even the faulty stack satisfies every property —
    the point of Figures 3-4 using it as a fair performance baseline."""
    spec = StackSpec(n=3, abcast="faulty-ids", consensus="ct", seed=seed)
    system = build_system(spec)
    SymmetricWorkload(
        system, throughput=throughput, payload_size=payload, duration=0.25
    ).install()
    system.run(until=5.0, max_events=10_000_000)
    AbcastChecker(system.trace, system.config).check_all()
