"""Behavioural tests for the four atomic broadcast stacks."""

import pytest

from repro import (
    CrashSchedule,
    StackSpec,
    SymmetricWorkload,
    build_system,
    check_abcast,
    make_payload,
)
from repro.core.exceptions import ConfigurationError

ALL_STACKS = [
    ("indirect", "ct-indirect", "flood"),
    ("indirect", "ct-indirect", "sender"),
    ("indirect", "mr-indirect", "flood"),
    ("faulty-ids", "ct", "flood"),
    ("faulty-ids", "mr", "flood"),
    ("urb-ids", "ct", "flood"),
    ("urb-ids", "mr", "flood"),
    ("on-messages", "ct", "flood"),
    ("on-messages", "mr", "flood"),
]


@pytest.mark.parametrize("abcast,consensus,rb", ALL_STACKS)
class TestFailureFreeRuns:
    def test_total_order_and_agreement(self, abcast, consensus, rb):
        spec = StackSpec(n=3, abcast=abcast, consensus=consensus, rb=rb, seed=2)
        system = build_system(spec)
        SymmetricWorkload(
            system, throughput=120, payload_size=100, duration=0.4
        ).install()
        system.run(until=1.5, max_events=3_000_000)
        check_abcast(system.trace, system.config)
        sequences = {
            pid: tuple(system.trace.adelivery_sequence(pid))
            for pid in system.config.processes
        }
        assert len(set(sequences.values())) == 1
        assert len(sequences[1]) > 30

    def test_every_sender_contributes(self, abcast, consensus, rb):
        spec = StackSpec(n=3, abcast=abcast, consensus=consensus, rb=rb, seed=9)
        system = build_system(spec)
        for pid in (1, 2, 3):
            system.processes[pid].schedule_at(
                0.001 * pid,
                lambda _pid=pid: system.abcasts[_pid].abroadcast(
                    make_payload(10, content=f"from-{_pid}")
                ),
            )
        assert system.run_until_delivered(count=3, timeout=2.0)
        origins = {mid.origin for mid in system.trace.adelivery_sequence(1)}
        assert origins == {1, 2, 3}


class TestDeliveryContent:
    def test_payload_content_travels_through_the_stack(self):
        spec = StackSpec(n=3, abcast="indirect", consensus="ct-indirect")
        system = build_system(spec)
        got = []
        system.abcasts[2].on_adeliver(lambda m: got.append(m.payload.content))
        system.abcasts[1].abroadcast(make_payload(16, content={"cmd": "inc"}))
        system.run_until_delivered(count=1, timeout=2.0)
        assert got == [{"cmd": "inc"}]

    def test_abroadcast_returns_message_with_fresh_id(self):
        spec = StackSpec(n=3)
        system = build_system(spec)
        a = system.abcasts[1].abroadcast(make_payload(1))
        b = system.abcasts[1].abroadcast(make_payload(1))
        assert a.mid != b.mid
        assert a.mid.origin == 1

    def test_crashed_process_cannot_abroadcast(self):
        spec = StackSpec(n=3)
        system = build_system(spec)
        system.processes[1].crash()
        assert system.abcasts[1].abroadcast(make_payload(1)) is None


class TestCrashRuns:
    @pytest.mark.parametrize(
        "abcast,consensus,n",
        [
            ("indirect", "ct-indirect", 3),
            ("indirect", "mr-indirect", 4),
            ("urb-ids", "ct", 3),
            ("on-messages", "ct", 3),
        ],
    )
    def test_correct_stacks_survive_a_crash(self, abcast, consensus, n):
        spec = StackSpec(n=n, abcast=abcast, consensus=consensus, seed=6)
        system = build_system(spec, CrashSchedule.single(2, 0.08))
        SymmetricWorkload(
            system, throughput=100, payload_size=60, duration=0.4
        ).install()
        system.run(until=3.0, max_events=5_000_000)
        check_abcast(system.trace, system.config)
        survivors = [p for p in system.config.processes if p != 2]
        counts = {p: system.abcasts[p].delivered_count() for p in survivors}
        assert min(counts.values()) > 20
        assert len({tuple(system.trace.adelivery_sequence(p)) for p in survivors}) == 1

    def test_crash_of_all_but_majority_still_delivers(self):
        spec = StackSpec(n=5, abcast="indirect", consensus="ct-indirect", seed=8)
        system = build_system(spec, CrashSchedule.of((2, 0.05), (4, 0.09)))
        SymmetricWorkload(
            system, throughput=80, payload_size=40, duration=0.4
        ).install()
        system.run(until=4.0, max_events=8_000_000)
        check_abcast(system.trace, system.config)


class TestStackSpecValidation:
    def test_indirect_stack_requires_indirect_consensus(self):
        with pytest.raises(ConfigurationError):
            StackSpec(n=3, abcast="indirect", consensus="ct")

    def test_faulty_stack_requires_original_consensus(self):
        with pytest.raises(ConfigurationError):
            StackSpec(n=3, abcast="faulty-ids", consensus="ct-indirect")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            StackSpec(n=3, abcast="quantum")

    def test_unknown_consensus_rejected(self):
        with pytest.raises(ConfigurationError):
            StackSpec(n=3, abcast="urb-ids", consensus="paxos")

    def test_mr_indirect_defaults_to_third_resilience(self):
        system = build_system(StackSpec(n=4, abcast="indirect", consensus="mr-indirect"))
        assert system.config.f == 1
        system = build_system(StackSpec(n=3, abcast="indirect", consensus="mr-indirect"))
        assert system.config.f == 0

    def test_over_f_crash_schedule_rejected(self):
        from repro.core.exceptions import ResilienceExceededError
        spec = StackSpec(n=3, abcast="indirect", consensus="ct-indirect")
        with pytest.raises(ResilienceExceededError):
            build_system(spec, CrashSchedule.of((1, 0.1), (2, 0.1)))


class TestBatching:
    def test_high_rate_batches_messages_per_instance(self):
        """At high throughput the reduction orders many messages per
        consensus execution — the batching the paper's throughput curves
        depend on."""
        spec = StackSpec(n=3, seed=3)
        system = build_system(spec)
        SymmetricWorkload(
            system, throughput=2000, payload_size=10, duration=0.2
        ).install()
        system.run(until=1.5, max_events=3_000_000)
        check_abcast(system.trace, system.config)
        messages = len(system.trace.adelivery_sequence(1))
        instances = len(system.trace.instances())
        assert messages / max(instances, 1) > 1.5

    def test_backlog_drains_after_burst(self):
        spec = StackSpec(n=3, seed=3)
        system = build_system(spec)
        for i in range(50):
            system.abcasts[1].abroadcast(make_payload(10))
        system.run(until=2.0, max_events=3_000_000)
        for abcast in system.abcasts.values():
            assert abcast.delivered_count() == 50
            assert abcast.backlog() == {
                "unordered": 0,
                "ordered_awaiting_message": 0,
                "pending_decisions": 0,
            }
