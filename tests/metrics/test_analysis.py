"""Tests for the trace-analysis package."""

import pytest

from repro import CrashSchedule, StackSpec, SymmetricWorkload, build_system, make_payload
from repro.analysis import batch_statistics, round_statistics, traffic_breakdown


def driven_system(throughput=200.0, rb="sender", crash=None, seed=7, n=3):
    spec = StackSpec(n=n, abcast="indirect", consensus="ct-indirect", rb=rb,
                     seed=seed, fd_detection_delay=20e-3)
    crashes = CrashSchedule.single(*crash) if crash else CrashSchedule.none()
    system = build_system(spec, crashes)
    SymmetricWorkload(system, throughput=throughput, payload_size=100,
                      duration=0.3).install()
    system.run(until=2.5, max_events=5_000_000)
    return system


class TestBatchStatistics:
    def test_counts_match_trace(self):
        system = driven_system()
        stats = batch_statistics(system.trace)
        assert stats.instances == len(system.trace.instances())
        assert stats.messages == len(system.trace.adelivery_sequence(1))
        assert stats.amortisation >= 1.0

    def test_batching_grows_with_load(self):
        calm = batch_statistics(driven_system(throughput=50.0).trace)
        busy = batch_statistics(driven_system(throughput=2000.0).trace)
        assert busy.amortisation > calm.amortisation * 1.5

    def test_empty_trace(self):
        from repro.sim.trace import Trace
        stats = batch_statistics(Trace())
        assert stats.instances == 0
        assert stats.amortisation == 0.0


class TestRoundStatistics:
    def test_good_runs_decide_in_round_one(self):
        system = driven_system(throughput=100.0)
        stats = round_statistics(system)
        assert stats.instances > 0
        assert stats.first_round_fraction > 0.9
        assert stats.decision_rounds.minimum == 1.0

    def test_crash_forces_later_rounds(self):
        system = driven_system(throughput=200.0, crash=(2, 0.1))
        stats = round_statistics(system)
        assert stats.first_round_fraction < 0.9
        assert stats.decision_rounds.maximum >= 2

    def test_churn_at_least_decision(self):
        system = driven_system()
        stats = round_statistics(system)
        assert stats.churn_rounds.maximum >= stats.decision_rounds.maximum

    def test_empty_system(self):
        spec = StackSpec(n=3, abcast="indirect", consensus="ct-indirect")
        system = build_system(spec)
        stats = round_statistics(system)
        assert stats.instances == 0
        assert stats.first_round_fraction == 0.0


class TestTrafficBreakdown:
    def test_flood_vs_sender_data_frames(self):
        """n=3: sender RB ships 2 data frames per broadcast, flood 6."""
        sender = driven_system(rb="sender")
        flood = driven_system(rb="flood")
        sends_s = len(sender.trace.abroadcasts())
        sends_f = len(flood.trace.abroadcasts())
        per_sender = traffic_breakdown(sender.network).frames_per_broadcast(sends_s)
        per_flood = traffic_breakdown(flood.network).frames_per_broadcast(sends_f)
        assert per_sender == pytest.approx(2.0, abs=0.3)
        assert per_flood == pytest.approx(6.0, abs=0.5)

    def test_totals_are_consistent(self):
        system = driven_system()
        traffic = traffic_breakdown(system.network)
        assert traffic.total_frames == traffic.data_frames + traffic.control_frames
        assert traffic.total_bytes == traffic.data_bytes + traffic.control_bytes
        assert 0.0 < traffic.control_share() < 1.0

    def test_payload_shifts_control_share_down(self):
        small = driven_system(seed=9)
        spec = StackSpec(n=3, abcast="indirect", consensus="ct-indirect",
                         rb="sender", seed=9)
        big = build_system(spec)
        SymmetricWorkload(big, throughput=200.0, payload_size=4000,
                          duration=0.3).install()
        big.run(until=2.5, max_events=5_000_000)
        assert (
            traffic_breakdown(big.network).control_share()
            < traffic_breakdown(small.network).control_share()
        )

    def test_empty_network(self):
        spec = StackSpec(n=3, abcast="indirect", consensus="ct-indirect")
        system = build_system(spec)
        traffic = traffic_breakdown(system.network)
        assert traffic.total_frames == 0
        assert traffic.control_share() == 0.0
        assert traffic.frames_per_broadcast(0) == 0.0
