"""Tests for the metric-probe registry, MetricValue, and built-in probes.

Includes the acceptance scenario of the probe redesign: a *custom*
probe registered from the outside sweeps end-to-end — spec → pool
worker → on-disk cache → ResultSet → report — without modifying any
``harness/`` module.
"""

import pickle

import pytest

from repro.analysis.traffic import TrafficBreakdown, traffic_breakdown
from repro.core.exceptions import ConfigurationError
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.report import render_resultset
from repro.harness.runner import run_suite, spec_key
from repro.harness.suite import SweepSpec
from repro.metrics.probes import (
    DEFAULT_PROBES,
    PROBES,
    MetricValue,
    Probe,
)
from repro.net.setups import SETUP_1
from repro.net.topology import Topology
from repro.stack.builder import StackSpec


def stack(**overrides):
    defaults = dict(n=3, abcast="indirect", consensus="ct-indirect",
                    rb="sender", params=SETUP_1)
    defaults.update(overrides)
    return StackSpec(**defaults)


def quick_spec(**overrides):
    defaults = dict(
        name="probe-unit", stack=stack(), throughput=200.0, payload=64,
        duration=0.3, warmup=0.05, drain=0.5,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestMetricValue:
    def test_canonical_order_makes_equality_insensitive_to_input_order(self):
        a = MetricValue.of({"b": 2.0, "a": 1.0})
        b = MetricValue.of({"a": 1.0, "b": 2.0})
        assert a == b
        assert a.keys() == ("a", "b")

    def test_getitem_get_and_sample(self):
        value = MetricValue.of({"x": 3.5}, series={"s": [1.0, 2.0]})
        assert value["x"] == 3.5
        assert value.get("missing", 9.0) == 9.0
        assert value.sample("s") == (1.0, 2.0)
        with pytest.raises(KeyError, match="no field"):
            value["missing"]
        with pytest.raises(KeyError, match="no series"):
            value.sample("missing")

    def test_non_numeric_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricValue.of({"bad": "text"})
        with pytest.raises(ConfigurationError):
            MetricValue.of({"bad": True})

    def test_hashable_and_picklable(self):
        value = MetricValue.of({"x": 1.0}, series={"s": [0.5]})
        assert hash(value) == hash(pickle.loads(pickle.dumps(value)))

    def test_as_dict_is_plain_data(self):
        value = MetricValue.of({"x": 1}, series={"s": [2.0]})
        assert value.as_dict() == {"fields": {"x": 1}, "series": {"s": [2.0]}}


class TestRegistry:
    def test_builtins_are_registered(self):
        for name in DEFAULT_PROBES:
            assert name in PROBES

    def test_unknown_probe_name_fails_at_spec_construction(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            quick_spec(metrics=("latancy",))

    def test_duplicate_probe_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            quick_spec(metrics=("latency", "latency"))

    def test_metrics_axis_participates_in_the_cache_key(self):
        assert spec_key(quick_spec()) != spec_key(
            quick_spec(metrics=("latency",))
        )

    def test_label_is_presentation_only(self):
        assert spec_key(quick_spec()) == spec_key(quick_spec(label="curve"))


class TestBuiltinProbes:
    def test_restricted_metrics_axis_measures_only_those_probes(self):
        result = run_experiment(quick_spec(metrics=("latency", "traffic")))
        assert set(result.metrics) == {"latency", "traffic"}
        with pytest.raises(KeyError, match="no 'consensus' metric"):
            result.instances_decided

    def test_traffic_probe_matches_the_live_network_breakdown(self):
        result = run_experiment(quick_spec())
        rebuilt = TrafficBreakdown.from_result(result)
        assert rebuilt.total_frames == result.frames_total
        assert rebuilt.total_bytes == (
            result.data_bytes + result.control_bytes
        )
        assert rebuilt.data_frames > 0 and rebuilt.control_frames > 0

    def test_fd_probe_counts_nothing_on_a_clean_oracle_run(self):
        value = run_experiment(quick_spec()).metric("fd")
        assert value["suspicions_raised"] == 0
        assert value["suspicions_retracted"] == 0

    def test_consensus_probe_counts_instances_and_rounds(self):
        value = run_experiment(quick_spec()).metric("consensus")
        assert value["instances_decided"] > 0
        assert value["decides_total"] >= value["instances_decided"]
        # Even failure-free, rcv-gated nacks may rotate a coordinator:
        # assert ordering, not an exact round count.
        assert value["churn_round_max"] >= value["decision_round_max"] >= 1.0
        assert value["first_round_decisions"] > 0

    def test_utilisation_probe_reports_per_segment_figures(self):
        # The satellite fix: multi-segment topologies used to report a
        # single number read off segment 0 (or 0.0 with no .medium);
        # every segment must now be visible, non-zero, and attributable.
        split = run_experiment(quick_spec(
            stack=stack(topology=Topology.split((1, 2), (3,))),
        ))
        value = split.metric("utilisation")
        assert value["medium.0"] > 0.0
        assert value["medium.1"] > 0.0
        assert value["medium_max"] == max(
            value["medium.0"], value["medium.1"]
        )
        assert split.diagnostics["medium_utilisation"] == value["medium_max"]

    def test_constant_network_has_no_contended_resources(self):
        result = run_experiment(quick_spec(stack=stack(network="constant")))
        assert result.metric("utilisation").fields == ()
        assert result.diagnostics["medium_utilisation"] == 0.0

    def test_latency_probe_raises_outside_the_measurement_window(self):
        with pytest.raises(ConfigurationError, match="measurement window"):
            run_experiment(quick_spec(duration=0.01, warmup=0.05))


# ----------------------------------------------------------------------
# Custom-probe acceptance: registered outside, swept end-to-end
# ----------------------------------------------------------------------


class AbcastFramesProbe(Probe):
    """Counts frames whose kind belongs to the reliable-broadcast data
    plane — a stand-in for any study-specific measurement."""

    def finish(self, system, sent):
        network = system.network
        data = sum(
            count for kind, count in network.frames_sent.items()
            if kind.endswith(".data")
        )
        return MetricValue.of({
            "data_frames": data,
            "per_send": data / sent if sent else 0.0,
        })


if "test-data-frames" not in PROBES:  # idempotent across collection
    PROBES.register(
        "test-data-frames",
        "data-plane frames per abroadcast (test probe)",
        factory=AbcastFramesProbe,
    )


class TestCustomProbeEndToEnd:
    def test_sweeps_through_pool_cache_resultset_and_report(self, tmp_path):
        sweep = SweepSpec(
            name="custom",
            variants=(("indirect", stack()),),
            throughputs=(200.0, 400.0),
            payloads=(64,),
            target_messages=30,
            warmup=0.05,
            drain=0.5,
            metrics=DEFAULT_PROBES + ("test-data-frames",),
        )
        suite = run_suite(sweep, cache_dir=tmp_path, processes=2)
        assert suite.cache_misses == 2
        rs = suite.result_set()
        assert "test-data-frames.data_frames" in rs.columns
        assert all(v > 0 for v in rs.column("test-data-frames.data_frames"))
        # Cached round trip preserves the custom payload.
        again = run_suite(sweep, cache_dir=tmp_path, processes=2)
        assert again.cache_hits == 2
        assert again.result_set().to_rows() == rs.to_rows()
        # And the report surface renders it without special-casing.
        out = render_resultset(
            rs, columns=("name", "test-data-frames.per_send"),
        )
        assert "test-data-frames.per_send" in out

    def test_custom_probe_sees_the_event_stream_identically(self):
        base = dict(
            stack=stack(), throughput=200.0, payload=64,
            duration=0.3, warmup=0.05, drain=0.5,
            metrics=("latency", "test-data-frames"),
        )
        full = run_experiment(ExperimentSpec(name="f", **base))
        light = run_experiment(ExperimentSpec(
            name="m", trace_mode="metrics", safety_checks=False, **base
        ))
        assert full.metrics["test-data-frames"] == (
            light.metrics["test-data-frames"]
        )
