"""Tests for summary statistics and the latency metric."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.events import ABroadcastEvent, ADeliverEvent, CrashEvent
from repro.core.exceptions import ConfigurationError
from repro.core.identifiers import MessageId
from repro.core.message import AppMessage, make_payload
from repro.metrics.latency import measure_latency
from repro.metrics.stats import percentile, summarize
from repro.sim.trace import Trace


class TestStats:
    def test_summarize_basics(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_single_sample(self):
        s = summarize([7.0])
        assert s.stdev == 0.0
        assert s.p99 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 0.5) == pytest.approx(5.0)
        assert percentile([0.0, 10.0], 0.0) == 0.0
        assert percentile([0.0, 10.0], 1.0) == 10.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_summary_invariants(self, values):
        s = summarize(values)
        assert s.minimum <= s.p50 <= s.p90 <= s.p99 <= s.maximum
        # The mean may drift by a few ulps from float summation; allow
        # a hair of slack around the [min, max] envelope.
        slack = 1e-9 * max(1.0, abs(s.maximum))
        assert s.minimum - slack <= s.mean <= s.maximum + slack


def msg(origin, seq, size=1):
    return AppMessage(
        mid=MessageId(origin, seq), sender=origin, payload=make_payload(size)
    )


def trace_with(events):
    trace = Trace()
    for e in events:
        trace.record(e)
    return trace


class TestLatencyMetric:
    def test_average_over_processes_and_messages(self):
        """The paper's definition, computed by hand."""
        m = msg(1, 1)
        trace = trace_with([
            ABroadcastEvent(time=1.0, process=1, message=m),
            ADeliverEvent(time=1.2, process=1, message=m),
            ADeliverEvent(time=1.4, process=2, message=m),
            ADeliverEvent(time=1.6, process=3, message=m),
        ])
        report = measure_latency(trace, SystemConfig(n=3))
        assert report.stats.mean == pytest.approx((0.2 + 0.4 + 0.6) / 3)
        assert report.messages_measured == 1
        assert report.messages_fully_delivered == 1
        assert report.mean_ms == pytest.approx(400.0)

    def test_warmup_and_cutoff_trim_messages(self):
        early, late, mid = msg(1, 1), msg(1, 3), msg(1, 2)
        trace = trace_with([
            ABroadcastEvent(time=0.05, process=1, message=early),
            ABroadcastEvent(time=0.5, process=1, message=mid),
            ABroadcastEvent(time=2.0, process=1, message=late),
            ADeliverEvent(time=0.1, process=1, message=early),
            ADeliverEvent(time=0.6, process=1, message=mid),
            ADeliverEvent(time=2.2, process=1, message=late),
        ])
        report = measure_latency(
            trace, SystemConfig(n=1), warmup=0.1, cutoff=1.0
        )
        assert report.messages_measured == 1
        assert report.stats.mean == pytest.approx(0.1)

    def test_crashed_process_deliveries_excluded(self):
        m = msg(1, 1)
        trace = trace_with([
            ABroadcastEvent(time=0.0, process=1, message=m),
            ADeliverEvent(time=0.1, process=1, message=m),
            ADeliverEvent(time=0.2, process=2, message=m),
            CrashEvent(time=0.3, process=2),
        ])
        report = measure_latency(trace, SystemConfig(n=2))
        # Only correct p1's sample counts.
        assert report.stats.count == 1
        assert report.stats.mean == pytest.approx(0.1)

    def test_partially_delivered_messages_counted_honestly(self):
        m = msg(1, 1)
        trace = trace_with([
            ABroadcastEvent(time=0.0, process=1, message=m),
            ADeliverEvent(time=0.1, process=1, message=m),
        ])
        report = measure_latency(trace, SystemConfig(n=3))
        assert report.messages_measured == 1
        assert report.messages_fully_delivered == 0

    def test_empty_window_rejected(self):
        m = msg(1, 1)
        trace = trace_with([ABroadcastEvent(time=0.0, process=1, message=m)])
        with pytest.raises(ConfigurationError):
            measure_latency(trace, SystemConfig(n=3), warmup=1.0)

    def test_no_deliveries_rejected(self):
        m = msg(1, 1)
        trace = trace_with([ABroadcastEvent(time=0.5, process=1, message=m)])
        with pytest.raises(ConfigurationError):
            measure_latency(trace, SystemConfig(n=3))
