"""Tests for the figure experiment definitions (cheap — no simulations).

These pin the *configuration* of each reproduced figure to the paper:
the right stacks, group sizes, network setups and sweep axes; the heavy
measured assertions live in benchmarks/.
"""

import pytest

from repro.harness import figures
from repro.net.setups import SETUP_1, SETUP_2


class TestVariantTable:
    def test_paper_legend_labels_map_to_stacks(self):
        cases = {
            "Consensus": ("on-messages", "ct"),
            "(Faulty) Consensus": ("faulty-ids", "ct"),
            "Indirect consensus": ("indirect", "ct-indirect"),
            "Indirect consensus w/ rbcast O(n^2)": ("indirect", "ct-indirect"),
            "Indirect consensus w/ rbcast O(n)": ("indirect", "ct-indirect"),
            "Consensus w/ uniform rbcast": ("urb-ids", "ct"),
        }
        for label, (abcast, consensus) in cases.items():
            spec = figures._stack(label, n=3, params=SETUP_1, seed=0)
            assert spec.abcast == abcast
            assert spec.consensus == consensus

    def test_figs_134_use_linear_rb(self):
        for label in ("Consensus", "(Faulty) Consensus", "Indirect consensus"):
            spec = figures._stack(label, n=3, params=SETUP_1, seed=0)
            assert spec.rb == "sender"

    def test_fig5_vs_fig6_rb_variants(self):
        flood = figures._stack(
            "Indirect consensus w/ rbcast O(n^2)", n=3, params=SETUP_2, seed=0
        )
        sender = figures._stack(
            "Indirect consensus w/ rbcast O(n)", n=3, params=SETUP_2, seed=0
        )
        assert flood.rb == "flood"
        assert sender.rb == "sender"

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            figures._stack("Paxos", n=3, params=SETUP_1, seed=0)


class TestSweepAxes:
    """The full grids must match the paper's axis ranges."""

    def test_fig1_sweeps_to_5000_bytes_at_both_rates(self):
        # Inspect without running: the payload lists are defined inline.
        import inspect
        src = inspect.getsource(figures.figure1)
        assert "5000" in src and "800.0" in src and "100.0" in src

    def test_fig3_covers_both_group_sizes(self):
        import inspect
        src = inspect.getsource(figures.figure3)
        assert "for n in (3, 5)" in src

    def test_fig4_has_four_throughput_panels(self):
        import inspect
        src = inspect.getsource(figures.figure4)
        assert "(10.0, 100.0, 400.0, 800.0)" in src

    def test_figs567_use_setup2(self):
        import inspect
        for fn in (figures.figure5, figures.figure6, figures.figure7):
            assert "SETUP_2" in inspect.getsource(fn)

    def test_fig7_has_both_rb_panels(self):
        import inspect
        src = inspect.getsource(figures.figure7)
        assert "RB in O(n^2) messages" in src
        assert "RB in O(n) messages" in src

    def test_all_figures_lists_the_six_measured_figures(self):
        import inspect
        src = inspect.getsource(figures.all_figures)
        for name in ("figure1", "figure3", "figure4", "figure5", "figure6", "figure7"):
            assert name in src
