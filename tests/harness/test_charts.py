"""Tests for the ASCII chart renderer."""

from repro.harness.charts import GLYPHS, render_chart, render_figure_charts
from repro.harness.figures import FigureData, Series


def series(label, points):
    s = Series(label=label)
    s.points = points
    return s


class TestRenderChart:
    def test_empty_series(self):
        assert render_chart([series("a", [])]) == "(no data)"

    def test_contains_axes_legend_and_glyphs(self):
        chart = render_chart(
            [series("fast", [(0, 1.0), (100, 2.0)]),
             series("slow", [(0, 2.0), (100, 8.0)])],
            width=40,
            height=8,
            title="demo",
        )
        assert "demo" in chart
        assert "* = fast" in chart
        assert "o = slow" in chart
        assert "+" + "-" * 40 in chart
        assert "8 ms" in chart  # y-axis top label
        assert "0" in chart and "100" in chart  # x-axis labels

    def test_monotone_series_renders_monotone_rows(self):
        chart = render_chart(
            [series("up", [(0, 0.0), (50, 5.0), (100, 10.0)])],
            width=20,
            height=10,
        )
        rows = [line for line in chart.splitlines() if line.startswith("|")]
        cols = []
        for row_index, row in enumerate(rows):
            for col_index, ch in enumerate(row):
                if ch == "*":
                    cols.append((col_index, row_index))
        cols.sort()
        # As x grows (columns increase), the row index must not increase
        # (higher latency = nearer the top).
        row_sequence = [r for _, r in cols]
        assert row_sequence == sorted(row_sequence, reverse=True)

    def test_single_point(self):
        chart = render_chart([series("dot", [(5, 3.0)])], width=10, height=5)
        grid_rows = [line for line in chart.splitlines() if line.startswith("|")]
        assert sum(row.count("*") for row in grid_rows) == 1

    def test_glyph_cycling(self):
        many = [series(f"s{i}", [(i, float(i + 1))]) for i in range(8)]
        chart = render_chart(many, width=30, height=8)
        for i in range(8):
            assert f"{GLYPHS[i % len(GLYPHS)]} = s{i}" in chart


class TestRenderFigureCharts:
    def test_renders_every_panel(self):
        fig = FigureData(fig_id="figX", title="T", xlabel="bytes")
        fig.panels["p1"] = [series("a", [(1, 1.0), (2, 2.0)])]
        fig.panels["p2"] = [series("b", [(1, 3.0), (2, 1.0)])]
        out = render_figure_charts(fig, width=20, height=6)
        assert "figX" in out
        assert "-- p1 --" in out and "-- p2 --" in out
