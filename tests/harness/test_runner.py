"""Tests for the parallel suite runner: cache, pool, streaming metrics.

These are the acceptance tests of the sweep subsystem: a ≥ 8-point grid
executes through the multiprocessing pool, a second invocation serves
every point from the on-disk cache, parallel results are bit-for-bit
equal to serial ones, and a ``MetricsTrace`` run agrees with the
full-``Trace`` run while retaining no event list.
"""

import dataclasses
import pickle

import pytest

from repro.core.exceptions import ConfigurationError
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.runner import (
    ResultCache,
    SuiteError,
    _code_fingerprint,
    parallel_map,
    run_suite,
    spec_key,
)
from repro.harness.suite import SweepSpec
from repro.net.faults import DuplicationRule, LossRule
from repro.net.setups import SETUP_1
from repro.net.topology import Topology
from repro.stack.builder import StackSpec


def stack(**overrides):
    defaults = dict(n=3, abcast="indirect", consensus="ct-indirect",
                    rb="sender", params=SETUP_1)
    defaults.update(overrides)
    return StackSpec(**defaults)


def small_sweep(**overrides):
    """8 quick points: 2 variants × 2 throughputs × 2 payloads."""
    defaults = dict(
        name="grid",
        variants=(
            ("indirect", stack()),
            ("messages", stack(abcast="on-messages", consensus="ct")),
        ),
        throughputs=(200.0, 400.0),
        payloads=(1, 500),
        target_messages=40,
        warmup=0.05,
        drain=0.5,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def exp_spec(**overrides):
    defaults = dict(
        name="one",
        stack=stack(),
        throughput=200.0,
        payload=64,
        duration=0.3,
        warmup=0.05,
        drain=0.5,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSpecKey:
    def test_stable_across_equal_specs(self):
        assert spec_key(exp_spec()) == spec_key(exp_spec())

    def test_name_does_not_affect_the_key(self):
        assert spec_key(exp_spec(name="x")) == spec_key(exp_spec(name="y"))

    def test_physical_fields_do_affect_the_key(self):
        base = spec_key(exp_spec())
        assert spec_key(exp_spec(payload=65)) != base
        assert spec_key(exp_spec(stack=stack(seed=1))) != base
        assert spec_key(exp_spec(trace_mode="metrics",
                                 safety_checks=False)) != base

    def test_fault_rules_participate_in_the_key(self):
        # Declarative fault rules are content-hashable: same rules give
        # the same key, a changed rule is a cache miss.
        lossy = exp_spec(stack=stack(faults=(LossRule(probability=0.1),)))
        assert spec_key(lossy) is not None
        assert spec_key(lossy) == spec_key(
            exp_spec(stack=stack(faults=(LossRule(probability=0.1),)))
        )
        assert spec_key(lossy) != spec_key(exp_spec())
        assert spec_key(lossy) != spec_key(
            exp_spec(stack=stack(faults=(LossRule(probability=0.2),)))
        )
        assert spec_key(lossy) != spec_key(
            exp_spec(stack=stack(faults=(DuplicationRule(probability=0.1),)))
        )

    def test_topology_participates_in_the_key(self):
        split = exp_spec(stack=stack(topology=Topology.split((1, 2), (3,))))
        assert spec_key(split) is not None
        assert spec_key(split) != spec_key(exp_spec())
        assert spec_key(split) != spec_key(exp_spec(stack=stack(
            topology=Topology.split((1, 2), (3,), router_latency=1e-3)
        )))

    def test_key_incorporates_a_source_tree_fingerprint(self):
        # The fingerprint is memoised and stable within a process; a
        # code edit would change it and invalidate old cache entries.
        fingerprint = _code_fingerprint()
        assert fingerprint == _code_fingerprint()
        assert len(fingerprint) == 64
        assert int(fingerprint, 16) >= 0


class TestResultCache:
    def test_store_then_load_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = exp_spec()
        result = run_experiment(spec)
        assert cache.store(spec, result)
        loaded = cache.load(spec)
        assert loaded is not None
        assert loaded.latency == result.latency
        assert loaded.sent == result.sent

    def test_load_rebinds_the_callers_spec_name(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = exp_spec(name="original")
        cache.store(spec, run_experiment(spec))
        renamed = dataclasses.replace(spec, name="renamed")
        loaded = cache.load(renamed)
        assert loaded is not None
        assert loaded.spec.name == "renamed"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = exp_spec()
        cache.store(spec, run_experiment(spec))
        cache.path_for(spec).write_bytes(b"not a pickle")
        assert cache.load(spec) is None


class TestRunSuite:
    def test_grid_runs_through_pool_then_fully_cached(self, tmp_path):
        sweep = small_sweep()
        assert len(sweep) == 8
        first = run_suite(sweep, cache_dir=tmp_path, processes=4)
        assert len(first) == 8
        assert first.cache_hits == 0
        assert first.cache_misses == 8
        # Second invocation: every point served from the on-disk cache.
        second = run_suite(sweep, cache_dir=tmp_path, processes=4)
        assert second.cache_hits == 8
        assert second.cache_misses == 0
        for a, b in zip(first.results, second.results):
            assert a.latency == b.latency
            assert a.sent == b.sent
            assert a.frames_total == b.frames_total

    def test_parallel_equals_serial_bit_for_bit(self, tmp_path):
        sweep = small_sweep()
        parallel = run_suite(sweep, cache_dir=tmp_path / "a", processes=4)
        serial = run_suite(sweep, cache_dir=tmp_path / "b", processes=1)
        for a, b in zip(parallel.results, serial.results):
            # Everything but the wall-clock diagnostic is identical.
            assert a.latency == b.latency
            assert a.sent == b.sent
            assert a.frames_total == b.frames_total
            assert a.data_bytes == b.data_bytes
            assert a.control_bytes == b.control_bytes
            assert a.simulated_seconds == b.simulated_seconds
            assert a.diagnostics["events"] == b.diagnostics["events"]

    def test_results_align_with_input_order(self, tmp_path):
        sweep = small_sweep()
        suite = run_suite(sweep, cache_dir=tmp_path)
        assert [s.name for s in suite.specs] == [
            s.name for s in sweep.experiments()
        ]
        assert all(
            result.spec.name == spec.name
            for spec, result in suite.pairs()
        )

    def test_partial_cache_only_computes_missing_points(self, tmp_path):
        half = small_sweep(payloads=(1,))
        run_suite(half, cache_dir=tmp_path)
        full = run_suite(small_sweep(), cache_dir=tmp_path)
        assert full.cache_hits == 4
        assert full.cache_misses == 4

    def test_uncacheable_specs_still_run(self, tmp_path, monkeypatch):
        # No stock spec is uncacheable any more (fault rules hash), so
        # simulate a spec without a content key to pin the degrade path.
        monkeypatch.setattr(
            "repro.harness.runner.spec_key", lambda spec: None
        )
        spec = exp_spec()
        suite = run_suite([spec], cache_dir=tmp_path)
        assert suite.uncacheable == 1
        assert suite.cache_misses == 0
        assert suite.results[0].sent > 0
        # And they miss again: nothing was stored.
        again = run_suite([spec], cache_dir=tmp_path)
        assert again.cache_hits == 0

    def test_use_cache_false_recomputes(self, tmp_path):
        sweep = small_sweep(payloads=(1,))
        run_suite(sweep, cache_dir=tmp_path)
        fresh = run_suite(sweep, cache_dir=tmp_path, use_cache=False)
        assert fresh.cache_hits == 0
        assert fresh.cache_misses == len(sweep)

    def test_summary_mentions_cache_accounting(self, tmp_path):
        suite = run_suite(small_sweep(payloads=(1,)), cache_dir=tmp_path)
        assert "4 points" in suite.summary()
        assert "0 cached" in suite.summary()

    def test_identical_points_computed_once_per_call(self, tmp_path):
        # Same physical grid under two names (e.g. a variant shared by
        # two figure panels): only one simulation per unique point.
        specs = [exp_spec(name="panel-a"), exp_spec(name="panel-b")]
        suite = run_suite(specs, cache_dir=tmp_path, use_cache=False)
        assert suite.cache_misses == 1
        assert suite.cache_hits == 1
        a, b = suite.results
        assert a.spec.name == "panel-a" and b.spec.name == "panel-b"
        assert a.latency == b.latency

    def test_failing_point_preserves_completed_siblings(self, tmp_path):
        good = exp_spec(name="good")
        # Degenerate window: the workload never sends inside it, so
        # measurement raises — but only for this point.
        bad = exp_spec(name="bad", duration=0.01, warmup=0.05)
        with pytest.raises(SuiteError) as excinfo:
            run_suite([good, bad], cache_dir=tmp_path, processes=2)
        assert "bad" in str(excinfo.value)
        # The good point was cached before the error surfaced: a re-run
        # of it alone is a pure cache hit.
        again = run_suite([good], cache_dir=tmp_path)
        assert again.cache_hits == 1

    def test_unwritable_cache_location_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        suite = run_suite(
            small_sweep(payloads=(1,)), cache_dir=blocker / "sub"
        )
        assert len(suite) == 4
        assert all(r.sent > 0 for r in suite.results)
        assert suite.cache_hits == 0


class TestMetricsTraceMode:
    def test_metrics_agrees_with_full_trace_and_keeps_no_events(self):
        base = dict(stack=stack(), throughput=200.0, payload=64,
                    duration=0.4, warmup=0.05, drain=0.5)
        full = run_experiment(ExperimentSpec(name="full", **base))
        metrics = run_experiment(ExperimentSpec(
            name="metrics", trace_mode="metrics", safety_checks=False, **base
        ))
        assert metrics.mean_latency_ms == pytest.approx(
            full.mean_latency_ms, abs=1e-12
        )
        assert sorted(metrics.latency.samples) == sorted(full.latency.samples)
        assert metrics.latency.messages_measured == full.latency.messages_measured
        assert (metrics.latency.messages_fully_delivered
                == full.latency.messages_fully_delivered)
        assert metrics.instances_decided == full.instances_decided
        assert metrics.sent == full.sent

    def test_metrics_mode_with_safety_checks_rejected(self):
        with pytest.raises(ConfigurationError):
            exp_spec(trace_mode="metrics", safety_checks=True)

    def test_unknown_trace_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            exp_spec(trace_mode="chatty")

    def test_metrics_sweep_runs_through_suite(self, tmp_path):
        sweep = small_sweep(trace_mode="metrics", payloads=(1,))
        suite = run_suite(sweep, cache_dir=tmp_path)
        assert all(r.mean_latency_ms > 0 for r in suite.results)


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], processes=2) == [9, 1, 4]

    def test_serial_fallback_for_unpicklable_fn(self):
        doubler = lambda x: x * 2  # noqa: E731 — deliberately unpicklable
        assert parallel_map(doubler, [1, 2, 3], processes=2) == [2, 4, 6]

    def test_one_unpicklable_item_does_not_serialise_the_rest(self):
        # A mixed batch still pools the picklable items; the offender
        # runs in-process.  Order is preserved throughout.
        items = [2, lambda: 3, 4, 5]
        out = parallel_map(_numify, items, processes=2)
        assert out == [2, 3, 4, 5]

    def test_empty_input(self):
        assert parallel_map(_square, [], processes=4) == []

    def test_results_are_picklable_specs_and_results(self):
        spec = exp_spec()
        pickle.loads(pickle.dumps(spec))
        result = run_experiment(spec)
        restored = pickle.loads(pickle.dumps(result))
        assert restored.latency == result.latency


def _square(x):
    return x * x


def _numify(x):
    return x() if callable(x) else x
