"""Tests for the columnar ResultSet surface and its cache round trip."""

import json
import pickle

import pytest

from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.results import ResultSet, concat
from repro.harness.runner import ResultCache, run_suite, spec_key
from repro.harness.suite import SweepSpec
from repro.net.setups import SETUP_1
from repro.stack.builder import StackSpec


def stack(**overrides):
    defaults = dict(n=3, abcast="indirect", consensus="ct-indirect",
                    rb="sender", params=SETUP_1)
    defaults.update(overrides)
    return StackSpec(**defaults)


def small_sweep(**overrides):
    defaults = dict(
        name="grid",
        variants=(
            ("indirect", stack()),
            ("messages", stack(abcast="on-messages", consensus="ct")),
        ),
        throughputs=(200.0, 400.0),
        payloads=(1, 500),
        target_messages=40,
        warmup=0.05,
        drain=0.5,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


@pytest.fixture(scope="module")
def suite(tmp_path_factory):
    return run_suite(
        small_sweep(), cache_dir=tmp_path_factory.mktemp("cache"),
    )


class TestResultSetQueries:
    def test_one_row_per_result_with_spec_and_probe_columns(self, suite):
        rs = suite.result_set()
        assert len(rs) == len(suite)
        for column in ("name", "label", "throughput", "payload",
                       "latency.mean_ms", "traffic.frames_total",
                       "consensus.instances_decided",
                       "fd.suspicions_raised", "utilisation.medium.0"):
            assert column in rs.columns, column

    def test_select_restricts_and_orders_columns(self, suite):
        rs = suite.result_set().select("payload", "latency.mean_ms")
        assert rs.columns == ("payload", "latency.mean_ms")
        assert len(rs) == len(suite)

    def test_where_filters_by_equality(self, suite):
        rs = suite.result_set()
        sub = rs.where(label="indirect", payload=500)
        assert len(sub) == 2  # two throughputs
        assert set(sub.column("throughput")) == {200.0, 400.0}
        assert all(v == "indirect" for v in sub.column("abcast"))

    def test_where_accepts_a_predicate(self, suite):
        rs = suite.result_set()
        heavy = rs.where(lambda row: row["throughput"] > 300.0)
        assert len(heavy) == len(rs) // 2

    def test_where_unknown_column_fails_loudly(self, suite):
        with pytest.raises(KeyError, match="no column"):
            suite.result_set().where(paylod=1)

    def test_group_by_partitions_in_first_seen_order(self, suite):
        groups = suite.result_set().group_by("label")
        assert list(groups) == [("indirect",), ("messages",)]
        assert all(len(g) == 4 for g in groups.values())

    def test_mean_aggregates_a_column(self, suite):
        rs = suite.result_set()
        values = rs.column("latency.mean_ms")
        assert rs.mean("latency.mean_ms") == pytest.approx(
            sum(values) / len(values)
        )

    def test_rows_keep_underlying_results_aligned(self, suite):
        sub = suite.result_set().where(label="messages")
        assert [r.spec.label for r in sub.results] == ["messages"] * 4
        assert list(sub.column("sent")) == [r.sent for r in sub.results]


class TestResultSetExport:
    def test_to_rows_round_trips_every_column(self, suite):
        rs = suite.result_set()
        rows = rs.to_rows()
        assert len(rows) == len(rs)
        assert all(set(row) == set(rs.columns) for row in rows)

    def test_to_csv_has_header_and_full_precision(self, suite):
        rs = suite.result_set()
        lines = rs.to_csv().splitlines()
        assert lines[0].split(",")[0] == "name"
        assert len(lines) == len(rs) + 1
        # Full precision: the raw float reparses exactly.
        column = list(rs.columns).index("latency.mean_ms")
        first = lines[1].split(",")[column]
        assert float(first) == rs.column("latency.mean_ms")[0]

    def test_to_json_is_a_list_of_row_objects(self, suite):
        rows = json.loads(suite.result_set().to_json())
        assert len(rows) == len(suite)
        assert rows[0]["payload"] == 1

    def test_concat_stacks_row_wise(self, suite):
        rs = suite.result_set()
        both = concat([rs, rs])
        assert len(both) == 2 * len(rs)
        assert both.columns == rs.columns
        assert len(both.results) == 2 * len(rs.results)

    def test_concat_preserves_column_restrictions(self, suite):
        # A selected (narrow) set must stay narrow through concat —
        # never re-flattened back to the full table.
        narrow = suite.result_set().select("name", "latency.mean_ms")
        out = concat([narrow, narrow])
        assert out.columns == ("name", "latency.mean_ms")
        assert len(out) == 2 * len(narrow)


class TestStrictConcat:
    """Schema mismatches must raise, naming the differing columns.

    The silent union used to pad holes with ``None`` — which reads as
    "this point measured nothing" three operators later.  Merging
    per-shard sweep slices is exactly where that bites, so strict is
    the default.
    """

    A = ResultSet({"name": ("a",), "goodput": (1.0,)})
    B = ResultSet({"name": ("b",), "shed": (2.0,)})

    def test_missing_and_extra_columns_are_named(self):
        with pytest.raises(ValueError) as err:
            concat([self.A, self.B])
        message = str(err.value)
        assert "input 1 vs input 0" in message
        assert "missing ['goodput']" in message
        assert "unexpected ['shed']" in message
        assert "strict=False" in message

    def test_same_columns_different_order_is_named(self):
        swapped = ResultSet({"goodput": (3.0,), "name": ("c",)})
        with pytest.raises(ValueError, match="different order"):
            concat([self.A, swapped])

    def test_mismatch_reports_the_offending_input_index(self):
        with pytest.raises(ValueError, match="input 2 vs input 0"):
            concat([self.A, self.A, self.B])

    def test_strict_false_union_pads_with_none(self):
        out = concat([self.A, self.B], strict=False)
        assert out.columns == ("name", "goodput", "shed")
        assert out.column("goodput") == (1.0, None)
        assert out.column("shed") == (None, 2.0)

    def test_matching_schemas_concat_cleanly(self):
        out = concat([self.A, self.A])
        assert out.columns == self.A.columns
        assert out.column("name") == ("a", "a")

    def test_classmethod_delegates(self):
        with pytest.raises(ValueError, match="schema mismatch"):
            ResultSet.concat([self.A, self.B])
        out = ResultSet.concat([self.A, self.B], strict=False)
        assert len(out) == 2

    def test_empty_input_stays_empty(self):
        assert len(concat([])) == 0


class TestSeriesFrom:
    def test_points_and_results_stay_aligned_when_rows_are_skipped(
        self, suite
    ):
        from repro.harness.charts import series_from

        rs = suite.result_set()
        # Blank one row's y value to simulate a probe measured on only
        # some points; the skipped row must drop from results too.
        columns = {name: list(rs.column(name)) for name in rs.columns}
        columns["latency.mean_ms"][0] = None
        gapped = ResultSet(columns, results=rs.results)
        for series in series_from(gapped, x="payload"):
            assert len(series.points) == len(series.results)
            for (_, y), result in zip(series.points, series.results):
                assert y == result.mean_latency_ms


class TestRenderSuiteFormats:
    def test_unknown_format_rejected(self, suite):
        from repro.core.exceptions import ConfigurationError
        from repro.harness.report import render_suite

        with pytest.raises(ConfigurationError, match="unknown format"):
            render_suite(suite, format="cvs")

    def test_csv_and_json_formats(self, suite):
        import json as jsonlib

        from repro.harness.report import render_suite

        csv_out = render_suite(suite, format="csv")
        assert csv_out.splitlines()[0].startswith("name,")
        payload = jsonlib.loads(render_suite(suite, format="json"))
        assert "summary" in payload and len(payload["rows"]) == len(suite)


class TestCacheRoundTrip:
    def test_resultset_survives_the_on_disk_cache(self, tmp_path):
        sweep = small_sweep(payloads=(1,))
        first = run_suite(sweep, cache_dir=tmp_path)
        assert first.cache_misses == len(sweep)
        second = run_suite(sweep, cache_dir=tmp_path)
        assert second.cache_hits == len(sweep)
        # The columnar views are equal, column for column, row for row
        # (wall_seconds included: hits return the stored result).
        a, b = first.result_set(), second.result_set()
        assert a.columns == b.columns
        assert a.to_rows() == b.to_rows()

    def test_metric_values_pickle_stably(self, tmp_path):
        spec = ExperimentSpec(
            name="pickle", stack=stack(), throughput=200.0, payload=64,
            duration=0.3, warmup=0.05, drain=0.5,
        )
        result = run_experiment(spec)
        restored = pickle.loads(pickle.dumps(result))
        assert restored.metrics == result.metrics
        assert restored.latency == result.latency

    def test_pre_probe_cache_entries_are_cleanly_ignored(self, tmp_path):
        # A v1-era pickle (no generic metrics payload) sitting at the
        # *current* key path must be treated as a miss, never handed to
        # consumers mis-shaped.
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(
            name="legacy", stack=stack(), throughput=200.0, payload=64,
            duration=0.3, warmup=0.05, drain=0.5,
        )
        path = cache.path_for(spec, key=spec_key(spec))
        path.write_bytes(pickle.dumps({"latency_ms": 1.0, "sent": 10}))
        assert cache.load(spec) is None
        suite = run_suite([spec], cache_dir=tmp_path)
        assert suite.cache_misses == 1
        assert suite.results[0].metrics  # freshly computed, probe payload
