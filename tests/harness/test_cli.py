"""Tests for the ``python -m repro.harness`` command-line interface."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_figure2_is_cheap_and_correct(self, capsys):
        assert main(["--figure", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 arithmetic" in out
        assert "f_max (indirect MR)" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--figure", "99"])

    def test_list_variants_prints_the_registry(self, capsys):
        assert main(["--list-variants"]) == 0
        out = capsys.readouterr().out
        for family in ("abcast:", "consensus:", "rb:", "fd:", "network:",
                       "workload:", "topology:"):
            assert family in out
        for name in ("indirect", "sequencer", "closed-loop", "heartbeat"):
            assert name in out
        assert "abcast=sequencer consensus=none" in out
        assert "frames: seq.fwd" in out

    def test_single_quick_figure_runs(self, capsys):
        assert main(["--figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "Indirect consensus" in out
        assert "done in" in out
