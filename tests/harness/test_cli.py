"""Tests for the ``python -m repro.harness`` command-line interface."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_figure2_is_cheap_and_correct(self, capsys):
        assert main(["--figure", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 arithmetic" in out
        assert "f_max (indirect MR)" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--figure", "99"])

    def test_list_variants_prints_the_registry(self, capsys):
        assert main(["--list-variants"]) == 0
        out = capsys.readouterr().out
        for family in ("abcast:", "consensus:", "rb:", "fd:", "network:",
                       "workload:", "topology:"):
            assert family in out
        for name in ("indirect", "sequencer", "closed-loop", "heartbeat"):
            assert name in out
        assert "abcast=sequencer consensus=none" in out
        assert "frames: seq.fwd" in out

    def test_single_quick_figure_runs(self, capsys):
        assert main(["--figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "Indirect consensus" in out
        assert "done in" in out

    def test_format_csv_exports_the_resultset(self, capsys):
        assert main([
            "--figure", "1", "--metrics", "latency,traffic",
            "--format", "csv",
        ]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        header = lines[0].split(",")
        assert "latency.mean_ms" in header
        assert "traffic.frames_total" in header
        # fig1: 2 panels x 2 variants x 3 payloads = 12 points.
        assert len(lines) == 13
        # The restricted probe set measured nothing else.
        assert not any(column.startswith("fd.") for column in header)

    def test_format_json_exports_row_objects(self, capsys):
        import json

        assert main([
            "--figure", "1", "--metrics", "latency", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 12
        assert {"name", "label", "throughput", "payload",
                "latency.mean_ms"} <= set(rows[0])

    def test_unknown_metric_probe_rejected_with_suggestion(self, capsys):
        with pytest.raises(SystemExit):
            main(["--figure", "1", "--metrics", "latancy"])
        assert "did you mean" in capsys.readouterr().err

    def test_metrics_without_latency_rejected_upfront(self, capsys):
        # Figures plot latency; a probe set that omits it must fail at
        # argument parsing, not with a KeyError mid-sweep.
        with pytest.raises(SystemExit):
            main(["--figure", "1", "--metrics", "traffic"])
        assert "must include 'latency'" in capsys.readouterr().err

    def test_figure2_honours_the_format_flag(self, capsys):
        import json

        assert main(["--figure", "2", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("n,")
        assert len(lines) == 12  # header + n=2..12
        assert main(["--figure", "2", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["n"] == 2
