"""Tests for the stack builder's wiring decisions."""

import pytest

from repro import StackSpec, build_system
from repro.broadcast.flood import FloodReliableBroadcast
from repro.broadcast.sender import SenderReliableBroadcast
from repro.broadcast.uniform import UniformReliableBroadcast
from repro.consensus.ct_indirect import CTIndirectConsensus
from repro.consensus.mr_indirect import MRIndirectConsensus
from repro.core.exceptions import ConfigurationError
from repro.failure.detector import OracleFailureDetector
from repro.failure.heartbeat import HeartbeatFailureDetector
from repro.net.models import ConstantLatencyNetwork, ContentionNetwork


class TestBuilderWiring:
    def test_rb_choice_maps_to_class(self):
        flood = build_system(StackSpec(n=3, rb="flood"))
        sender = build_system(StackSpec(n=3, rb="sender"))
        assert isinstance(flood.broadcasts[1], FloodReliableBroadcast)
        assert isinstance(sender.broadcasts[1], SenderReliableBroadcast)

    def test_urb_variant_ignores_rb_choice(self):
        system = build_system(
            StackSpec(n=3, abcast="urb-ids", consensus="ct", rb="sender")
        )
        assert isinstance(system.broadcasts[1], UniformReliableBroadcast)

    def test_consensus_classes(self):
        ct = build_system(StackSpec(n=3, consensus="ct-indirect"))
        mr = build_system(
            StackSpec(n=4, abcast="indirect", consensus="mr-indirect")
        )
        assert isinstance(ct.consensuses[1], CTIndirectConsensus)
        assert isinstance(mr.consensuses[1], MRIndirectConsensus)

    def test_network_choice(self):
        contention = build_system(StackSpec(n=3, network="contention"))
        constant = build_system(StackSpec(n=3, network="constant"))
        assert isinstance(contention.network, ContentionNetwork)
        assert isinstance(constant.network, ConstantLatencyNetwork)

    def test_fd_choice(self):
        oracle = build_system(StackSpec(n=3, fd="oracle"))
        heartbeat = build_system(StackSpec(n=3, fd="heartbeat"))
        assert isinstance(oracle.detectors[1], OracleFailureDetector)
        assert isinstance(heartbeat.detectors[1], HeartbeatFailureDetector)

    def test_default_f_is_per_algorithm_maximum(self):
        assert build_system(StackSpec(n=5, consensus="ct-indirect")).config.f == 2
        assert (
            build_system(
                StackSpec(n=5, abcast="indirect", consensus="mr-indirect")
            ).config.f
            == 1
        )

    def test_explicit_f_is_honoured(self):
        system = build_system(StackSpec(n=5, f=1))
        assert system.config.f == 1

    def test_rcv_charge_wired_only_on_contention(self):
        contention = build_system(StackSpec(n=3, network="contention"))
        constant = build_system(StackSpec(n=3, network="constant"))
        assert contention.consensuses[1].charge_rcv is not None
        assert constant.consensuses[1].charge_rcv is None

    def test_missing_policy_reaches_consensus(self):
        system = build_system(StackSpec(n=3, ct_missing_policy="wait"))
        assert system.consensuses[1].missing_policy == "wait"

    def test_bad_missing_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            build_system(StackSpec(n=3, ct_missing_policy="retry"))

    def test_every_process_gets_its_own_stack(self):
        system = build_system(StackSpec(n=4))
        assert len(system.abcasts) == 4
        assert len({id(a) for a in system.abcasts.values()}) == 4
        for pid, abcast in system.abcasts.items():
            assert abcast.pid == pid

    def test_correct_processes_tracks_crashes(self):
        from repro import CrashSchedule
        system = build_system(StackSpec(n=3), CrashSchedule.single(2, 0.1))
        assert system.correct_processes() == {1, 2, 3}
        system.run(until=0.2)
        assert system.correct_processes() == {1, 3}

    def test_custom_trace_observer_is_used(self):
        from repro.sim.trace import MetricsTrace
        observer = MetricsTrace()
        system = build_system(StackSpec(n=3, network="constant"),
                              trace=observer)
        assert system.trace is observer
        for process in system.processes.values():
            assert process.trace is observer


class TestConstantNetworkKnobs:
    """``per_byte``/``jitter`` of the constant network, via StackSpec."""

    def test_per_byte_and_jitter_reach_the_network(self):
        system = build_system(StackSpec(
            n=3, network="constant",
            constant_latency=1e-3, constant_per_byte=1e-6,
            constant_jitter=2e-4,
        ))
        assert system.network.base == 1e-3
        assert system.network.per_byte == 1e-6
        assert system.network.jitter == 2e-4
        assert system.network.rng is system.rngs.stream("net.jitter")

    def test_defaults_stay_deterministic(self):
        system = build_system(StackSpec(n=3, network="constant"))
        assert system.network.per_byte == 0.0
        assert system.network.jitter == 0.0
        assert system.network.rng is None

    def test_jitter_is_reproducible_per_seed(self):
        def delivery_times(seed):
            from repro.core.message import make_payload
            system = build_system(StackSpec(
                n=3, network="constant", constant_jitter=5e-4, seed=seed,
            ))
            system.abcasts[1].abroadcast(make_payload(10, "m"))
            system.run_until_delivered(count=1, timeout=1.0)
            return [
                e.time for e in system.trace.adeliveries()
            ]
        assert delivery_times(3) == delivery_times(3)
        assert delivery_times(3) != delivery_times(4)

    def test_negative_knobs_rejected(self):
        for field in ("constant_latency", "constant_per_byte",
                      "constant_jitter"):
            with pytest.raises(ConfigurationError):
                StackSpec(n=3, network="constant", **{field: -1e-6})
