"""Tests for the declarative sweep grids (cheap — no simulations)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.harness.suite import SweepSpec, expand
from repro.net.setups import SETUP_1
from repro.stack.builder import StackSpec


def stack(**overrides):
    defaults = dict(n=3, abcast="indirect", consensus="ct-indirect",
                    rb="sender", params=SETUP_1)
    defaults.update(overrides)
    return StackSpec(**defaults)


def sweep(**overrides):
    defaults = dict(
        name="unit",
        variants=(("a", stack()), ("b", stack(abcast="on-messages",
                                              consensus="ct"))),
        throughputs=(100.0, 400.0),
        payloads=(1, 2500),
        seeds=(0, 7),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestExpansion:
    def test_grid_size(self):
        s = sweep()
        assert len(s) == 2 * 2 * 2 * 2
        assert len(s.experiments()) == len(s)

    def test_expansion_order_is_variant_seed_throughput_payload(self):
        specs = sweep().experiments()
        # First variant's block comes first, seeds iterate within it.
        first_block = specs[: len(specs) // 2]
        assert all("unit/a " in spec.name for spec in first_block)
        assert [s.payload for s in specs[:2]] == [1, 2500]
        assert specs[0].throughput == specs[1].throughput == 100.0
        assert specs[2].throughput == 400.0
        assert "seed=0" in specs[0].name and "seed=7" in specs[4].name

    def test_seed_axis_overrides_stack_seed(self):
        specs = sweep(seeds=(13,)).experiments()
        assert all(spec.stack.seed == 13 for spec in specs)

    def test_duration_derived_from_target_messages(self):
        s = sweep(target_messages=120, warmup=0.1, throughputs=(400.0,))
        for spec in s.experiments():
            assert spec.duration == pytest.approx(0.1 + 120 / 400.0)

    def test_axes_accept_lists(self):
        s = SweepSpec(
            name="coerce",
            variants=[("only", stack())],
            throughputs=[100.0],
            payloads=[1],
            seeds=[0],
        )
        assert s.throughputs == (100.0,)
        assert s.payloads == (1,)
        assert len(s) == 1

    def test_expand_concatenates_sweeps(self):
        a, b = sweep(name="a"), sweep(name="b")
        specs = expand([a, b])
        assert len(specs) == len(a) + len(b)
        assert expand(a) == a.experiments()


class TestSafetyDefaults:
    def test_full_trace_checks_on(self):
        assert all(s.safety_checks for s in sweep().experiments())
        assert all(s.trace_mode == "full" for s in sweep().experiments())

    def test_metrics_mode_checks_off(self):
        specs = sweep(trace_mode="metrics").experiments()
        assert all(not s.safety_checks for s in specs)
        assert all(s.trace_mode == "metrics" for s in specs)

    def test_explicit_checks_with_metrics_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(trace_mode="metrics", safety_checks=True)


class TestValidation:
    def test_empty_axes_rejected(self):
        for axis in ("variants", "throughputs", "payloads", "seeds"):
            with pytest.raises(ConfigurationError):
                sweep(**{axis: ()})

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(variants=(("x", stack()), ("x", stack())))

    def test_nonpositive_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(throughputs=(0.0,))

    def test_unknown_trace_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(trace_mode="chatty")

    def test_nonpositive_target_messages_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(target_messages=0)
