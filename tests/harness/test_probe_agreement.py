"""Full-trace vs metrics-mode probe agreement (the acceptance test).

Both trace modes feed the *same* probe set through the
:class:`~repro.metrics.probes.ProbeTap`, so every built-in probe must
report **bit-identical** values whether the run retained a checkable
event trace (``trace_mode="full"``) or nothing at all
(``trace_mode="metrics"``).  Asserted on the four stacks of the paper's
evaluation.
"""

import pytest

from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.metrics.probes import DEFAULT_PROBES
from repro.net.setups import SETUP_1, SETUP_2
from repro.stack.builder import StackSpec

#: The four golden stacks of the evaluation (Figures 1-7).
GOLDEN_STACKS = {
    "indirect": dict(abcast="indirect", consensus="ct-indirect",
                     rb="sender", params=SETUP_1),
    "on-messages": dict(abcast="on-messages", consensus="ct",
                        rb="sender", params=SETUP_1),
    "faulty-ids": dict(abcast="faulty-ids", consensus="ct",
                       rb="sender", params=SETUP_1),
    "urb-ids": dict(abcast="urb-ids", consensus="ct",
                    rb="flood", params=SETUP_2),
}


def run_pair(stack_kwargs):
    base = dict(
        stack=StackSpec(n=3, seed=5, **stack_kwargs),
        throughput=200.0,
        payload=64,
        duration=0.3,
        warmup=0.05,
        drain=0.5,
    )
    full = run_experiment(ExperimentSpec(name="full", **base))
    metrics = run_experiment(ExperimentSpec(
        name="metrics", trace_mode="metrics", safety_checks=False, **base
    ))
    return full, metrics


class TestProbeAgreement:
    @pytest.mark.parametrize("stack_name", sorted(GOLDEN_STACKS))
    def test_every_builtin_probe_is_bit_identical_across_modes(
        self, stack_name
    ):
        full, metrics = run_pair(GOLDEN_STACKS[stack_name])
        assert set(full.metrics) == set(DEFAULT_PROBES)
        for probe in DEFAULT_PROBES:
            # MetricValue equality covers every field and every sample
            # vector — bit-identical, not approximately equal.
            assert full.metrics[probe] == metrics.metrics[probe], probe

    @pytest.mark.parametrize("stack_name", sorted(GOLDEN_STACKS))
    def test_run_accounting_agrees_across_modes(self, stack_name):
        full, metrics = run_pair(GOLDEN_STACKS[stack_name])
        assert full.sent == metrics.sent
        assert full.undelivered == metrics.undelivered
        assert full.simulated_seconds == metrics.simulated_seconds
        assert full.diagnostics["events"] == metrics.diagnostics["events"]

    def test_figure_assembly_rejects_latency_less_probe_sets(self):
        from repro.core.exceptions import ConfigurationError
        from repro.harness.figures import FigureData, _run_panels, _panel_sweep, SuiteOptions
        from repro.net.setups import SETUP_1

        sweep = _panel_sweep(
            "p", ["Indirect consensus"], 3, SETUP_1, [200.0], [1],
            quick=True, options=SuiteOptions(metrics=("traffic",)),
        )
        fig = FigureData(fig_id="x", title="t", xlabel="b")
        with pytest.raises(ConfigurationError, match="latency"):
            _run_panels(fig, [("p", sweep, "payload")],
                        SuiteOptions(metrics=("traffic",)))

    def test_compat_shims_derive_from_the_same_values(self):
        full, metrics = run_pair(GOLDEN_STACKS["indirect"])
        assert full.mean_latency_ms == metrics.mean_latency_ms
        assert full.latency == metrics.latency
        assert full.frames_total == metrics.frames_total
        assert full.data_bytes == metrics.data_bytes
        assert full.control_bytes == metrics.control_bytes
        assert full.instances_decided == metrics.instances_decided
        assert full.row() == {**metrics.row(), "name": "full"}
