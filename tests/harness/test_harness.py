"""Tests for the experiment runner and the figure/report machinery."""

import pytest

from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.figures import Series, figure2_table
from repro.harness.report import crossover_summary, render_figure, render_table
from repro.net.setups import SETUP_1
from repro.stack.builder import StackSpec


def quick_spec(**overrides):
    defaults = dict(
        name="unit",
        stack=StackSpec(n=3, params=SETUP_1, fd="oracle", seed=0),
        throughput=200.0,
        payload=64,
        duration=0.3,
        warmup=0.05,
        drain=0.5,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestRunExperiment:
    def test_produces_consistent_result(self):
        result = run_experiment(quick_spec())
        assert result.sent > 30
        assert result.undelivered == 0
        assert result.mean_latency_ms > 0.5  # network floor
        assert result.instances_decided > 0
        assert result.latency.messages_fully_delivered > 0
        assert result.frames_total > result.sent

    def test_repeatable(self):
        a = run_experiment(quick_spec())
        b = run_experiment(quick_spec())
        assert a.mean_latency_ms == b.mean_latency_ms
        assert a.sent == b.sent

    def test_row_summary(self):
        row = run_experiment(quick_spec()).row()
        assert set(row) == {
            "name", "throughput", "payload", "latency_ms", "p90_ms",
            "sent", "undelivered",
        }

    def test_data_vs_control_byte_split(self):
        big = run_experiment(quick_spec(payload=2000))
        small = run_experiment(quick_spec(payload=1))
        assert big.data_bytes > small.data_bytes * 5
        # Control traffic (consensus on ids) is payload-independent.
        assert big.control_bytes == pytest.approx(small.control_bytes, rel=0.3)

    def test_safety_checks_run_by_default(self):
        assert quick_spec().safety_checks is True


class TestFigure2Table:
    def test_contains_paper_example_row(self):
        rows = {r["n"]: r for r in figure2_table()}
        seven = rows[7]
        assert seven["f_max (indirect MR)"] == 2
        assert seven["phase2 quorum ⌈(2n+1)/3⌉"] == 5
        assert seven["min overlap (n-2f)"] == 3
        assert seven["f_max (original MR)"] == 3

    def test_indirect_never_beats_original(self):
        for row in figure2_table():
            assert row["f_max (indirect MR)"] <= row["f_max (original MR)"]


class TestReportRendering:
    def test_render_table(self):
        out = render_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T")
        assert "T" in out
        assert "a" in out and "b" in out
        assert "22" in out

    def test_render_empty_table(self):
        assert render_table([]) == "(empty table)"

    def test_render_figure_layout(self):
        from repro.harness.figures import FigureData
        fig = FigureData(fig_id="figX", title="demo", xlabel="bytes")
        s = Series(label="A")
        s.points = [(1, 1.5), (100, 2.5)]
        fig.panels["panel-1"] = [s]
        out = render_figure(fig)
        assert "figX" in out and "panel-1" in out and "2.5" in out

    def test_crossover_summary(self):
        a = Series(label="fast")
        a.points = [(1, 1.0), (2, 3.0)]
        b = Series(label="slow")
        b.points = [(1, 2.0), (2, 2.5)]
        out = crossover_summary(a, b)
        assert "x=1: fast" in out
        assert "x=2: slow" in out
