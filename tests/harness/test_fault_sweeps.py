"""Fault and topology axes through the parallel suite runner.

Acceptance tests of the link-subsystem refactor at the harness layer:
fault-free latency numbers are **bit-identical** to the pre-refactor
implementation (golden values recorded from the previous `main`), a
loss-rate sweep and a partition-window scenario both run through
``run_suite`` with correct cache accounting, and the fault/topology
axes expand and label grid points deterministically.
"""

import pytest

from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.runner import run_suite, spec_key
from repro.harness.suite import SweepSpec
from repro.net.faults import LossRule, PartitionWindow
from repro.net.setups import SETUP_1, SETUP_2
from repro.net.topology import Topology
from repro.stack.builder import StackSpec


def stack(**overrides):
    defaults = dict(n=3, abcast="indirect", consensus="ct-indirect",
                    rb="sender", params=SETUP_1)
    defaults.update(overrides)
    return StackSpec(**defaults)


class TestGoldenRegression:
    """Fault-free runs must match the pre-refactor implementation
    bit for bit (values recorded on `main` before the link-subsystem
    refactor).  A drift here means the pipeline/topology default path
    is no longer inert."""

    CASES = {
        "contention-indirect": (
            ExperimentSpec(
                name="golden-contention",
                stack=stack(seed=7),
                throughput=200.0, payload=64, duration=0.3,
                warmup=0.05, drain=0.5,
            ),
            (2.5574951129797894, 65, 1493, 3746, 0.8),
        ),
        "contention-messages": (
            ExperimentSpec(
                name="golden-messages",
                stack=stack(abcast="on-messages", consensus="ct",
                            rb="flood", params=SETUP_2, seed=3),
                throughput=300.0, payload=500, duration=0.25,
                warmup=0.05, drain=0.5,
            ),
            (1.3594270056790299, 79, 2108, 5434, 0.25052674034662276),
        ),
        "constant-jitter": (
            ExperimentSpec(
                name="golden-constant",
                stack=stack(
                    abcast="urb-ids", consensus="ct", network="constant",
                    constant_latency=1e-3, constant_per_byte=1e-7,
                    constant_jitter=2e-4, seed=11,
                ),
                throughput=200.0, payload=100, duration=0.3,
                warmup=0.05, drain=0.5,
            ),
            (5.3100355322822566, 47, 1195, 1233, 0.30402473427776333),
        ),
    }

    @pytest.mark.parametrize("label", sorted(CASES))
    def test_fault_free_runs_are_bit_identical_to_pre_refactor(self, label):
        spec, golden = self.CASES[label]
        result = run_experiment(spec)
        got = (
            result.latency.mean_ms,
            result.sent,
            result.frames_total,
            result.diagnostics["events"],
            result.simulated_seconds,
        )
        assert got == golden


class TestAxisExpansion:
    def test_default_axes_change_nothing(self):
        plain = SweepSpec(
            name="s", variants=(("a", stack()),),
            throughputs=(100.0,), payloads=(1,),
        )
        assert len(plain) == 1
        spec = plain.experiments()[0]
        assert spec.name == "s/a n=3 100msg/s 1B seed=0"
        assert spec.stack.faults == ()
        assert spec.stack.topology is None

    def test_fault_and_topology_axes_multiply_and_label(self):
        sweep = SweepSpec(
            name="s", variants=(("a", stack()),),
            fault_sets=(("", ()), ("loss2", (LossRule(probability=0.02),))),
            topologies=(("", None), ("split", Topology.split((1, 2), (3,)))),
            throughputs=(100.0,), payloads=(1,),
        )
        assert len(sweep) == 4
        names = [s.name for s in sweep.experiments()]
        assert names[0].startswith("s/a ")
        assert any("+loss2" in n and "@split" not in n for n in names)
        assert any("@split" in n and "+loss2" not in n for n in names)
        assert any("+loss2@split" in n for n in names)

    def test_fault_axis_appends_to_variant_faults(self):
        window = PartitionWindow(start=0.1, end=0.2, groups=((1,), (2, 3)))
        sweep = SweepSpec(
            name="s",
            variants=(("a", stack(faults=(window,))),),
            fault_sets=(("loss", (LossRule(probability=0.1),)),),
            throughputs=(100.0,), payloads=(1,),
        )
        faults = sweep.experiments()[0].stack.faults
        assert faults == (window, LossRule(probability=0.1))

    def test_duplicate_axis_labels_rejected(self):
        from repro.core.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            SweepSpec(
                name="s", variants=(("a", stack()),),
                fault_sets=(("x", ()), ("x", (LossRule(probability=0.1),))),
                throughputs=(100.0,), payloads=(1,),
            )


class TestFaultSweepsThroughRunner:
    def loss_sweep(self, rates):
        return SweepSpec(
            name="loss-sweep",
            variants=(("indirect", stack()),),
            fault_sets=tuple(
                (f"loss{int(rate * 100)}",
                 (LossRule(probability=rate, kind_prefix="rb1."),))
                if rate else ("", ())
                for rate in rates
            ),
            throughputs=(200.0,),
            payloads=(64,),
            target_messages=30,
            warmup=0.05,
            drain=0.5,
            safety_checks=False,
        )

    def test_loss_rate_sweep_with_correct_cache_accounting(self, tmp_path):
        sweep = self.loss_sweep((0.0, 0.02))
        first = run_suite(sweep, cache_dir=tmp_path, processes=2)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        assert all(r.sent > 0 for r in first.results)
        # Identical sweep: all hits.
        second = run_suite(sweep, cache_dir=tmp_path, processes=2)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert second.results[0].latency == first.results[0].latency
        # Changed loss rate: the shared baseline hits, the new rate misses.
        third = run_suite(
            self.loss_sweep((0.0, 0.05)), cache_dir=tmp_path, processes=2
        )
        assert (third.cache_hits, third.cache_misses) == (1, 1)

    def test_partition_scenario_through_parallel_run_suite(self, tmp_path):
        window = PartitionWindow(start=0.1, end=0.2, groups=((1, 2), (3,)))
        specs = [
            ExperimentSpec(
                name="baseline", stack=stack(network="constant"),
                throughput=200.0, payload=64, duration=0.3,
                warmup=0.05, drain=0.5, safety_checks=False,
            ),
            ExperimentSpec(
                name="partitioned",
                stack=stack(network="constant", faults=(window,)),
                throughput=200.0, payload=64, duration=0.3,
                warmup=0.05, drain=0.5, safety_checks=False,
            ),
        ]
        assert spec_key(specs[0]) != spec_key(specs[1])
        first = run_suite(specs, cache_dir=tmp_path, processes=2)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        # The partition leaves the minority behind: undelivered backlog.
        assert first.results[1].undelivered > first.results[0].undelivered
        second = run_suite(specs, cache_dir=tmp_path, processes=2)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert second.results[1].undelivered == first.results[1].undelivered

    def test_topology_axis_through_run_suite(self, tmp_path):
        sweep = SweepSpec(
            name="topo",
            variants=(("indirect", stack()),),
            topologies=(
                ("lan", None),
                ("2seg", Topology.split((1, 2), (3,), router_latency=1e-3)),
            ),
            throughputs=(200.0,),
            payloads=(64,),
            target_messages=30,
            warmup=0.05,
            drain=0.5,
        )
        suite = run_suite(sweep, cache_dir=tmp_path, processes=2)
        by_name = suite.by_name()
        lan = by_name["topo/indirect@lan n=3 200msg/s 64B seed=0"]
        wan = by_name["topo/indirect@2seg n=3 200msg/s 64B seed=0"]
        assert wan.mean_latency_ms > lan.mean_latency_ms
