"""Tests for frames and the calibrated network presets."""

from repro.core.identifiers import MESSAGE_ID_WIRE_SIZE
from repro.net.frame import FRAME_HEADER_SIZE, Frame
from repro.net.setups import SETUP_1, SETUP_2


class TestFrame:
    def test_wire_size_adds_header(self):
        f = Frame(src=1, dst=2, kind="k", body=None, size=100)
        assert f.wire_size() == 100 + FRAME_HEADER_SIZE

    def test_sequence_numbers_are_unique_and_increasing(self):
        a = Frame(src=1, dst=2, kind="k", body=None, size=0)
        b = Frame(src=1, dst=2, kind="k", body=None, size=0)
        assert b.seq > a.seq

    def test_control_flag_default(self):
        assert Frame(src=1, dst=2, kind="k", body=None, size=0).control is True

    def test_frames_are_immutable(self):
        import pytest
        f = Frame(src=1, dst=2, kind="k", body=None, size=0)
        with pytest.raises(AttributeError):
            f.size = 5  # type: ignore[misc]


class TestSetups:
    def test_setup2_is_faster_than_setup1(self):
        """Setup 2 (P4 + gigabit) must dominate Setup 1 (PIII + 100 Mb)
        in every constant."""
        assert SETUP_2.send_overhead < SETUP_1.send_overhead
        assert SETUP_2.recv_overhead < SETUP_1.recv_overhead
        assert SETUP_2.cpu_per_byte < SETUP_1.cpu_per_byte
        assert SETUP_2.wire_per_byte < SETUP_1.wire_per_byte
        assert SETUP_2.rcv_lookup_cost < SETUP_1.rcv_lookup_cost

    def test_wire_rates_match_link_speeds(self):
        """0.08 us/B = 100 Mb/s; 0.008 us/B = 1 Gb/s."""
        assert SETUP_1.wire_per_byte == 0.08e-6
        assert SETUP_2.wire_per_byte == 0.008e-6

    def test_id_frames_are_payload_independent(self):
        """A consensus frame carrying 10 ids costs the same regardless
        of the application payloads behind those ids — the decoupling
        the paper is about, visible at the size-accounting level."""
        ids_size = 10 * MESSAGE_ID_WIRE_SIZE
        f_small_payloads = Frame(src=1, dst=2, kind="cti.prop", body=None, size=ids_size)
        f_large_payloads = Frame(src=1, dst=2, kind="cti.prop", body=None, size=ids_size)
        assert f_small_payloads.wire_size() == f_large_payloads.wire_size()
