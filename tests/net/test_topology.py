"""Tests for multi-segment topologies on both network models."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.net.frame import FRAME_HEADER_SIZE, Frame
from repro.net.models import ConstantLatencyNetwork, ContentionNetwork, NetworkParams
from repro.net.topology import Topology
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.trace import Trace

PARAMS = NetworkParams(
    send_overhead=10e-6,
    recv_overhead=10e-6,
    cpu_per_byte=0.0,
    wire_overhead=5e-6,
    wire_per_byte=0.1e-6,
)


def make_net(n=4, kind="contention", topology=None, **kwargs):
    engine = Engine()
    trace = Trace()
    if kind == "constant":
        network = ConstantLatencyNetwork(
            engine, base=1e-3, topology=topology, **kwargs
        )
    else:
        network = ContentionNetwork(
            engine, PARAMS, topology=topology, **kwargs
        )
    processes = {}
    inboxes = {pid: [] for pid in range(1, n + 1)}
    for pid in range(1, n + 1):
        process = SimProcess(pid, engine, trace)
        processes[pid] = process
        network.attach(
            process, lambda frame, _pid=pid: inboxes[_pid].append(frame)
        )
    return engine, network, processes, inboxes


def frame(src, dst, size=100):
    return Frame(src=src, dst=dst, kind="t.data", body=None, size=size)


class TestTopologyValidation:
    def test_duplicate_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology.split((1, 2), (2, 3))

    def test_empty_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology.split((1,), ())

    def test_negative_router_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology.split((1,), (2,), router_latency=-1e-6)

    def test_validate_for_needs_full_coverage(self):
        Topology.split((1, 2), (3,)).validate_for(3)
        with pytest.raises(ConfigurationError, match="unplaced"):
            Topology.split((1, 2)).validate_for(3)
        with pytest.raises(ConfigurationError, match="unknown"):
            Topology.split((1, 2), (3, 9)).validate_for(3)

    def test_single_segment_places_everyone(self):
        topo = Topology.single()
        assert topo.segment_of(1) == topo.segment_of(99) == 0
        assert not topo.crosses(1, 99)
        topo.validate_for(50)

    def test_attach_rejects_unplaced_process(self):
        with pytest.raises(ConfigurationError):
            make_net(n=3, topology=Topology.split((1, 2)))


class TestConstantModel:
    def test_cross_segment_pays_router_latency(self):
        engine, network, _, inboxes = make_net(
            n=4, kind="constant",
            topology=Topology.split((1, 2), (3, 4), router_latency=2e-3),
        )
        network.send(frame(1, 2))
        engine.run_until_idle()
        assert engine.now == pytest.approx(1e-3)  # intra-segment
        network.send(frame(1, 3))
        engine.run_until_idle()
        assert engine.now == pytest.approx(1e-3 + 1e-3 + 2e-3)


class TestContentionModel:
    def test_single_segment_keeps_one_medium_named_as_before(self):
        _, network, _, _ = make_net(topology=None)
        assert len(network.media) == 1
        assert network.medium.name == "net.medium"

    def test_segments_get_independent_media(self):
        engine, network, _, inboxes = make_net(
            topology=Topology.split((1, 2), (3, 4))
        )
        assert len(network.media) == 2
        # Intra-segment transfers on different segments do not contend:
        # both complete in one wire time, not two.
        network.send(frame(1, 2, size=1000))
        network.send(frame(3, 4, size=1000))
        engine.run_until_idle()
        wire = PARAMS.wire_overhead + PARAMS.wire_per_byte * (
            1000 + FRAME_HEADER_SIZE
        )
        assert network.media[0].busy_time == pytest.approx(wire)
        assert network.media[1].busy_time == pytest.approx(wire)
        expected = PARAMS.send_overhead + wire + PARAMS.recv_overhead
        assert engine.now == pytest.approx(expected)

    def test_cross_segment_charges_both_media_and_the_router(self):
        engine, network, _, inboxes = make_net(
            topology=Topology.split((1, 2), (3, 4), router_latency=1e-3)
        )
        f = frame(1, 3, size=1000)
        network.send(f)
        engine.run_until_idle()
        wire = PARAMS.wire_overhead + PARAMS.wire_per_byte * f.wire_size()
        assert network.media[0].busy_time == pytest.approx(wire)
        assert network.media[1].busy_time == pytest.approx(wire)
        expected = (
            PARAMS.send_overhead + wire + 1e-3 + wire + PARAMS.recv_overhead
        )
        assert engine.now == pytest.approx(expected)
        assert len(inboxes[3]) == 1

    def test_zero_latency_router_still_store_and_forwards(self):
        engine, network, _, inboxes = make_net(
            topology=Topology.split((1, 2), (3, 4), router_latency=0.0)
        )
        network.send(frame(1, 3, size=1000))
        engine.run_until_idle()
        assert len(inboxes[3]) == 1
        assert network.media[1].jobs_served == 1

    def test_remote_segment_traffic_does_not_contend_at_home(self):
        """A burst between p3/p4 must not delay p1->p2 frames: the whole
        point of segmenting the collision domain."""
        engine, network, _, inboxes = make_net(
            topology=Topology.split((1, 2), (3, 4))
        )
        for _ in range(20):
            network.send(frame(3, 4, size=1400))
        network.send(frame(1, 2, size=100))
        engine.run_until_idle()
        wire = PARAMS.wire_overhead + PARAMS.wire_per_byte * (
            100 + FRAME_HEADER_SIZE
        )
        # p1's frame saw an idle medium; same time as an unloaded net.
        assert inboxes[2][0] is not None
        assert network.media[0].busy_time == pytest.approx(wire)


class TestBuilderIntegration:
    def test_stackspec_validates_topology_coverage(self):
        from repro.stack.builder import StackSpec

        with pytest.raises(ConfigurationError):
            StackSpec(n=3, topology=Topology.split((1, 2)))

    def test_split_system_still_delivers(self):
        from repro import StackSpec, build_system, check_abcast, make_payload

        spec = StackSpec(
            n=3,
            abcast="indirect",
            consensus="ct-indirect",
            topology=Topology.split((1, 2), (3,), router_latency=1e-3),
        )
        system = build_system(spec)
        system.abcasts[1].abroadcast(make_payload(100, "m"))
        assert system.run_until_delivered(count=1, timeout=2.0)
        check_abcast(system.trace, system.config)

    def test_router_latency_shows_in_end_to_end_latency(self):
        from repro import StackSpec, build_system, make_payload
        from repro.metrics.latency import measure_latency

        def mean_latency(topology):
            spec = StackSpec(
                n=3, abcast="indirect", consensus="ct-indirect",
                topology=topology,
            )
            system = build_system(spec)
            system.abcasts[1].abroadcast(make_payload(100, "m"))
            assert system.run_until_delivered(count=1, timeout=2.0)
            return measure_latency(
                system.trace, system.config, warmup=0.0, cutoff=1.0
            ).mean_ms

        lan = mean_latency(None)
        wan = mean_latency(Topology.split((1, 2), (3,), router_latency=5e-3))
        assert wan > lan
