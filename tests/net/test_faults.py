"""Tests for the declarative link-fault pipeline."""

import pickle

import pytest

from repro.core.exceptions import ConfigurationError
from repro.net.faults import (
    DelayRule,
    DuplicationRule,
    FaultPipeline,
    LossRule,
    PartitionWindow,
)
from repro.net.frame import Frame
from repro.net.models import ConstantLatencyNetwork
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace


def make_net(n=2, faults=(), seed=0, **kwargs):
    engine = Engine()
    trace = Trace()
    network = ConstantLatencyNetwork(
        engine, base=1e-3, faults=faults, rngs=RngRegistry(seed=seed), **kwargs
    )
    inboxes = {pid: [] for pid in range(1, n + 1)}
    for pid in range(1, n + 1):
        network.attach(
            SimProcess(pid, engine, trace),
            lambda frame, _pid=pid: inboxes[_pid].append(frame),
        )
    return engine, network, inboxes


def frame(src=1, dst=2, size=100, kind="test.data", control=False):
    return Frame(src=src, dst=dst, kind=kind, body="x", size=size, control=control)


class TestMatching:
    def test_unconstrained_rule_matches_everything(self):
        rule = DelayRule(delay=1e-3)
        assert rule.matches(frame())
        assert rule.matches(frame(src=9, dst=7, kind="x.y", control=True))

    def test_each_constraint_filters(self):
        assert DelayRule(src=1, delay=1e-3).matches(frame(src=1))
        assert not DelayRule(src=2, delay=1e-3).matches(frame(src=1))
        assert DelayRule(dst=2, delay=1e-3).matches(frame(dst=2))
        assert not DelayRule(dst=3, delay=1e-3).matches(frame(dst=2))
        assert DelayRule(kind_prefix="test.", delay=1e-3).matches(frame())
        assert not DelayRule(kind_prefix="ct.", delay=1e-3).matches(frame())
        assert DelayRule(control=False, delay=1e-3).matches(frame(control=False))
        assert not DelayRule(control=True, delay=1e-3).matches(frame(control=False))


class TestLoss:
    def test_probabilistic_loss_is_deterministic_per_seed(self):
        def delivered(seed):
            engine, network, inboxes = make_net(
                faults=(LossRule(probability=0.5),), seed=seed
            )
            for _ in range(40):
                network.send(frame())
            engine.run_until_idle()
            return len(inboxes[2]), network.pipeline.lost

        got, lost = delivered(1)
        assert 0 < got < 40
        assert got + lost == 40
        assert delivered(1) == (got, lost)
        assert delivered(2) != (got, lost)  # another stream realisation

    def test_nth_frame_loss_is_exact(self):
        engine, network, inboxes = make_net(
            faults=(LossRule(kind_prefix="test.", nth=(2, 4)),)
        )
        for i in range(1, 6):
            network.send(frame(size=i))
        engine.run_until_idle()
        assert [f.size for f in inboxes[2]] == [1, 3, 5]
        assert network.pipeline.lost == 2
        assert network.frames_dropped == 2

    def test_non_matching_frames_draw_nothing(self):
        # A fully biased rule that never matches must not perturb the
        # run at all (no net.loss draws).
        engine, network, inboxes = make_net(
            faults=(LossRule(kind_prefix="other.", probability=1.0),)
        )
        for _ in range(5):
            network.send(frame())
        engine.run_until_idle()
        assert len(inboxes[2]) == 5
        assert network.pipeline.lost == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LossRule()  # no mechanism
        with pytest.raises(ConfigurationError):
            LossRule(probability=1.5)
        with pytest.raises(ConfigurationError):
            LossRule(probability=0.5, nth=(1,))
        with pytest.raises(ConfigurationError):
            LossRule(nth=(0,))

    def test_probabilistic_rules_need_rngs(self):
        with pytest.raises(ConfigurationError):
            FaultPipeline(Engine(), rules=(LossRule(probability=0.5),))
        # Deterministic nth-losses do not.
        FaultPipeline(Engine(), rules=(LossRule(nth=(1,)),))


class TestDuplication:
    def test_deterministic_duplicate(self):
        engine, network, inboxes = make_net(
            faults=(DuplicationRule(kind_prefix="test.", copies=2),)
        )
        network.send(frame())
        engine.run_until_idle()
        assert len(inboxes[2]) == 3  # original + 2 copies
        assert network.pipeline.duplicated == 2
        assert network.frames_sent == {"test.data": 1}  # one protocol send

    def test_probabilistic_duplicate_is_deterministic_per_seed(self):
        def copies(seed):
            engine, network, inboxes = make_net(
                faults=(DuplicationRule(probability=0.3),), seed=seed
            )
            for _ in range(30):
                network.send(frame())
            engine.run_until_idle()
            return len(inboxes[2])

        got = copies(5)
        assert 30 < got < 60
        assert copies(5) == got

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DuplicationRule(probability=0.0)
        with pytest.raises(ConfigurationError):
            DuplicationRule(copies=0)


class TestDelayRules:
    def test_first_matching_rule_wins(self):
        engine, network, inboxes = make_net(
            faults=(DelayRule(src=1, delay=5e-3), DelayRule(delay=50e-3))
        )
        network.send(frame(src=1))
        engine.run_until_idle()
        assert engine.now == pytest.approx(5e-3)

    def test_extra_stretches_the_model_delay(self):
        engine, network, inboxes = make_net(
            faults=(DelayRule(extra=2e-3),)
        )
        network.send(frame())
        engine.run_until_idle()
        assert engine.now == pytest.approx(1e-3 + 2e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DelayRule()  # neither override nor extra
        with pytest.raises(ConfigurationError):
            DelayRule(delay=-1.0)
        with pytest.raises(ConfigurationError):
            DelayRule(extra=-1.0)

    def test_delay_override_rejected_by_the_contention_model(self):
        """The contention model has no single one-way delay to replace,
        so an override rule would be a silent no-op — reject it."""
        from repro.net.models import ContentionNetwork, NetworkParams

        params = NetworkParams(10e-6, 10e-6, 0.0, 5e-6, 0.1e-6)
        with pytest.raises(ConfigurationError, match="constant model only"):
            ContentionNetwork(
                Engine(), params, faults=(DelayRule(delay=1e-3),)
            )
        # Additive extras are meaningful on both models.
        ContentionNetwork(Engine(), params, faults=(DelayRule(extra=1e-3),))


class TestPartitionWindow:
    def test_severs_only_cross_group_inside_window(self):
        window = PartitionWindow(start=1.0, end=2.0, groups=((1, 2), (3,)))
        assert window.severs(1, 3, now=1.5)
        assert not window.severs(1, 2, now=1.5)  # same group
        assert not window.severs(1, 3, now=0.5)  # before window
        assert not window.severs(1, 3, now=2.0)  # end is exclusive
        assert not window.severs(3, 3, now=1.5)  # loopback never severed

    def test_unlisted_processes_form_an_implicit_group(self):
        window = PartitionWindow(start=0.0, end=1.0, groups=((1,),))
        assert window.severs(1, 4, now=0.5)
        assert not window.severs(4, 5, now=0.5)  # both unlisted

    def test_network_drops_frames_sent_inside_the_window(self):
        engine, network, inboxes = make_net(
            n=3,
            faults=(PartitionWindow(start=1.0, end=2.0, groups=((1, 2), (3,))),),
        )
        network.send(frame(src=1, dst=3, size=1))       # before: passes
        engine.schedule(1.5, network.send, frame(src=1, dst=3, size=2))
        engine.schedule(1.5, network.send, frame(src=1, dst=2, size=3))
        engine.schedule(2.5, network.send, frame(src=1, dst=3, size=4))
        engine.run_until_idle()
        assert [f.size for f in inboxes[3]] == [1, 4]
        assert [f.size for f in inboxes[2]] == [3]
        assert network.pipeline.partitioned == 1

    def test_in_flight_frames_survive_the_window_opening(self):
        engine, network, inboxes = make_net(
            faults=(DelayRule(delay=2.0),
                    PartitionWindow(start=1.0, end=3.0, groups=((1,), (2,)))),
        )
        network.send(frame())  # sent at t=0, lands at t=2 mid-window
        engine.run_until_idle()
        assert len(inboxes[2]) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=2.0, end=1.0, groups=((1,),))
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=0.0, end=1.0, groups=())
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=0.0, end=1.0, groups=((1,), (1, 2)))


class TestRuleHygiene:
    def test_rules_pickle_roundtrip(self):
        rules = (
            LossRule(probability=0.25, src=1),
            LossRule(nth=(3,)),
            DuplicationRule(copies=2),
            DelayRule(dst=2, delay=1e-3, extra=5e-4),
            PartitionWindow(start=0.1, end=0.2, groups=((1, 2), (3,))),
        )
        assert pickle.loads(pickle.dumps(rules)) == rules

    def test_unknown_rule_type_rejected_by_pipeline(self):
        with pytest.raises(ConfigurationError):
            FaultPipeline(Engine(), rules=(object(),))

    def test_fault_free_pipeline_is_inert(self):
        pipeline = FaultPipeline(Engine())
        f = frame()
        assert pipeline.admit(f) == [f]
        assert pipeline.delay_rule_for(f) is None
        assert pipeline.extra_delay(f) == 0.0
