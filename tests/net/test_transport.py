"""Tests for the per-process transport endpoint."""

import pytest

from repro.core.exceptions import ConfigurationError
from tests.helpers import make_fabric


class TestRegistration:
    def test_dispatch_by_kind(self):
        fabric = make_fabric(2)
        got = []
        fabric.transports[2].register("a.x", lambda f: got.append(("x", f.body)))
        fabric.transports[2].register("a.y", lambda f: got.append(("y", f.body)))
        fabric.transports[1].send(2, "a.y", body="hello", size=5)
        fabric.run()
        assert got == [("y", "hello")]

    def test_duplicate_registration_rejected(self):
        fabric = make_fabric(2)
        fabric.transports[1].register("k", lambda f: None)
        with pytest.raises(ConfigurationError):
            fabric.transports[1].register("k", lambda f: None)

    def test_unhandled_kind_raises(self):
        fabric = make_fabric(2)
        fabric.transports[1].send(2, "nobody.home", body=None, size=1)
        with pytest.raises(ConfigurationError):
            fabric.run()

    def test_crashed_receiver_ignores_frames(self):
        fabric = make_fabric(2)
        got = []
        fabric.transports[2].register("k", lambda f: got.append(f))
        fabric.transports[1].send(2, "k", body=None, size=1)
        fabric.processes[2].crash()
        fabric.run()
        assert got == []


class TestSendPrimitives:
    def test_send_to_self_loops_back(self):
        fabric = make_fabric(2)
        got = []
        fabric.transports[1].register("k", lambda f: got.append(f.src))
        fabric.transports[1].send(1, "k", body=None, size=1)
        fabric.run()
        assert got == [1]

    def test_send_all_includes_self_by_default(self):
        fabric = make_fabric(3)
        got = {pid: [] for pid in (1, 2, 3)}
        for pid in (1, 2, 3):
            fabric.transports[pid].register(
                "k", lambda f, _pid=pid: got[_pid].append(f.src)
            )
        fabric.transports[2].send_all("k", body=None, size=1)
        fabric.run()
        assert got == {1: [2], 2: [2], 3: [2]}

    def test_send_all_exclude_self(self):
        fabric = make_fabric(3)
        got = {pid: [] for pid in (1, 2, 3)}
        for pid in (1, 2, 3):
            fabric.transports[pid].register(
                "k", lambda f, _pid=pid: got[_pid].append(f.src)
            )
        fabric.transports[2].send_all("k", body=None, size=1, include_self=False)
        fabric.run()
        assert got == {1: [2], 2: [], 3: [2]}

    def test_multicast_targets_subset(self):
        fabric = make_fabric(4)
        got = {pid: 0 for pid in (1, 2, 3, 4)}

        def bump(f):
            got[f.dst] += 1

        for pid in (1, 2, 3, 4):
            fabric.transports[pid].register("k", bump)
        fabric.transports[1].multicast([3, 4], "k", body=None, size=1)
        fabric.run()
        assert got == {1: 0, 2: 0, 3: 1, 4: 1}

    def test_peers_lists_everyone(self):
        fabric = make_fabric(3)
        assert fabric.transports[2].peers == (1, 2, 3)
