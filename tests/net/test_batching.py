"""Same-(time, destination) delivery batching: equivalence + gating.

PR 6 lets a network coalesce back-to-back frames due at the same
instant to the same destination into one scheduled event draining a
batch list.  The contract is strict bit-identity: receivers see the
same frames, in the same order, at the same simulated times, whether
or not batching engaged — batching only changes how many engine events
carry them.  These tests pin the equivalence, the seq-adjacency close
condition, and the gates (annotating engines and the lost-socket-
buffers policy must keep one individually cancellable/deferrable event
per frame).
"""

from repro.net.frame import Frame
from repro.net.models import ConstantLatencyNetwork, ContentionNetwork, NetworkParams
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.trace import Trace

# All-zero costs: every stage completes instantly, so a burst's
# receiver-side completions tie exactly and the coalescing path runs.
PARAMS = NetworkParams(
    send_overhead=0.0,
    recv_overhead=0.0,
    cpu_per_byte=0.0,
    wire_overhead=0.0,
    wire_per_byte=0.0,
)


def make_net(n=3, kind="constant", annotating=False, **kwargs):
    engine = Engine(annotating=annotating)
    trace = Trace()
    if kind == "constant":
        network = ConstantLatencyNetwork(engine, base=1e-3, **kwargs)
    else:
        network = ContentionNetwork(engine, PARAMS, **kwargs)
    inboxes = {pid: [] for pid in range(1, n + 1)}
    for pid in range(1, n + 1):
        process = SimProcess(pid, engine, trace)
        network.attach(
            process,
            lambda f, _pid=pid, _e=engine: inboxes[_pid].append((_e.now, f)),
        )
    return engine, network, inboxes


def frame(src=1, dst=2, seq=0):
    return Frame(src=src, dst=dst, kind="test.data", body=seq, size=100)


def burst(network, dst=2, count=4):
    for i in range(count):
        network.send(frame(dst=dst, seq=i))


class TestConstantModelBatching:
    def test_burst_coalesces_into_one_event(self):
        engine, network, inboxes = make_net()
        burst(network)
        assert engine.pending() == 1  # four frames, one delivery event
        engine.run_until_idle()
        assert [f.body for _, f in inboxes[2]] == [0, 1, 2, 3]
        assert engine.events_executed == 1

    def test_batched_and_unbatched_inboxes_identical(self):
        outcomes = []
        for annotating in (False, True):
            engine, network, inboxes = make_net(annotating=annotating)
            burst(network, dst=2)
            burst(network, dst=3, count=2)
            network.send(frame(src=3, dst=2, seq=99))
            engine.run_until_idle()
            outcomes.append({
                pid: [(t, f.src, f.body) for t, f in inbox]
                for pid, inbox in inboxes.items()
            })
        assert outcomes[0] == outcomes[1]

    def test_interleaved_schedule_closes_the_batch(self):
        engine, network, inboxes = make_net()
        network.send(frame(seq=0))
        engine.schedule(1e-3, lambda: None)  # anything breaks seq-adjacency
        network.send(frame(seq=1))
        assert engine.pending() == 3
        engine.run_until_idle()
        assert [f.body for _, f in inboxes[2]] == [0, 1]

    def test_different_destination_or_time_never_coalesces(self):
        engine, network, inboxes = make_net()
        network.send(frame(dst=2, seq=0))
        network.send(frame(dst=3, seq=1))
        assert engine.pending() == 2
        engine.run(until=0.5)
        network.send(frame(dst=2, seq=2))  # later time, same dst
        assert engine.pending() == 1
        engine.run_until_idle()
        assert [f.body for _, f in inboxes[2]] == [0, 2]

    def test_send_from_within_batch_drain_is_not_appended(self):
        """A same-time send issued by a receiver handler must schedule
        its own event (the open batch already fired)."""
        engine, network, inboxes = make_net()
        relayed = []

        def relay(f):
            relayed.append(f.body)
            if f.body == 0:
                network.send(frame(src=2, dst=2, seq=50))

        network._handlers[2] = relay
        burst(network, count=2)
        engine.run(until=1e-3)  # exactly the batch's due time
        assert relayed == [0, 1]
        assert engine.pending() == 1  # the relayed frame waits its delay
        engine.run_until_idle()
        assert relayed == [0, 1, 50]

    def test_crash_drop_policy_disables_batching(self):
        engine, network, inboxes = make_net(
            drop_in_flight_of_crashed_sender=True
        )
        burst(network)
        # One event per frame: in-flight tracking cancels individually.
        assert engine.pending() == 4
        network.process(1).crash()
        engine.run_until_idle()
        assert inboxes[2] == []
        assert network.frames_dropped == 4

    def test_annotating_engine_keeps_per_frame_events(self):
        engine, network, _ = make_net(annotating=True)
        burst(network)
        assert engine.pending() == 4
        infos = [rec.info for _, _, rec in engine.pending_entries()]
        assert all(isinstance(i, Frame) for i in infos)

    def test_dst_crash_mid_batch_drops_only_its_frames(self):
        engine, network, inboxes = make_net()

        def crash_then_receive(f):
            inboxes[2].append((engine.now, f))
            network.process(2).crash()

        network._handlers[2] = crash_then_receive
        burst(network, count=3)
        engine.run_until_idle()
        # First frame lands, handler crashes p2, rest of the batch drops.
        assert len(inboxes[2]) == 1
        assert network.frames_dropped == 2


class TestContentionModelBatching:
    def test_zero_recv_cost_completions_coalesce(self):
        engine, network, inboxes = make_net(kind="contention")
        burst(network, count=3)
        engine.run_until_idle()
        assert [f.body for _, f in inboxes[2]] == [0, 1, 2]
        times = [t for t, _ in inboxes[2]]
        # Wire costs are zero too, so the three deliveries tie exactly.
        assert len(set(times)) == 1

    def test_matches_annotated_run_exactly(self):
        results = []
        for annotating in (False, True):
            engine, network, inboxes = make_net(
                kind="contention", annotating=annotating
            )
            burst(network, count=3)
            burst(network, dst=3, count=2)
            engine.run_until_idle()
            results.append((
                {
                    pid: [(t, f.src, f.body) for t, f in inbox]
                    for pid, inbox in inboxes.items()
                },
                engine.now,
            ))
        assert results[0] == results[1]

    def test_cpu_accounting_charged_per_frame(self):
        params = NetworkParams(
            send_overhead=0.0,
            recv_overhead=7e-6,
            cpu_per_byte=0.0,
            wire_overhead=0.0,
            wire_per_byte=0.0,
        )
        engine = Engine()
        network = ContentionNetwork(engine, params)
        trace = Trace()
        for pid in (1, 2):
            network.attach(SimProcess(pid, engine, trace), lambda f: None)
        burst(network, count=5)
        engine.run_until_idle()
        cpu = network.process(2).cpu
        assert cpu.jobs_served == 5
        assert abs(cpu.busy_time - 5 * 7e-6) < 1e-12
