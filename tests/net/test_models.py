"""Tests for the network models: delays, contention, crash semantics."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.net.faults import DelayRule
from repro.net.frame import FRAME_HEADER_SIZE, Frame
from repro.net.models import ConstantLatencyNetwork, ContentionNetwork, NetworkParams
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.trace import Trace

PARAMS = NetworkParams(
    send_overhead=10e-6,
    recv_overhead=10e-6,
    cpu_per_byte=0.0,
    wire_overhead=5e-6,
    wire_per_byte=0.1e-6,
    rcv_lookup_cost=1e-6,
)


def make_net(n=2, kind="constant", **kwargs):
    engine = Engine()
    trace = Trace()
    if kind == "constant":
        network = ConstantLatencyNetwork(engine, base=1e-3, **kwargs)
    else:
        network = ContentionNetwork(engine, PARAMS, **kwargs)
    processes = {}
    inboxes = {pid: [] for pid in range(1, n + 1)}
    for pid in range(1, n + 1):
        process = SimProcess(pid, engine, trace)
        processes[pid] = process
        network.attach(
            process, lambda frame, _pid=pid: inboxes[_pid].append(frame)
        )
    return engine, network, processes, inboxes


def frame(src=1, dst=2, size=100, kind="test.data", control=False):
    return Frame(src=src, dst=dst, kind=kind, body="x", size=size, control=control)


class TestParamsValidation:
    def test_rejects_negative_constants(self):
        with pytest.raises(ConfigurationError):
            NetworkParams(-1e-6, 0, 0, 0, 0)

    def test_constant_network_rejects_negative_base(self):
        with pytest.raises(ConfigurationError):
            ConstantLatencyNetwork(Engine(), base=-1.0)

    def test_jitter_requires_rng(self):
        with pytest.raises(ConfigurationError):
            ConstantLatencyNetwork(Engine(), jitter=1e-3)


class TestConstantLatency:
    def test_delivers_after_base_delay(self):
        engine, network, _, inboxes = make_net()
        network.send(frame())
        engine.run_until_idle()
        assert len(inboxes[2]) == 1
        assert engine.now == pytest.approx(1e-3)

    def test_per_byte_component(self):
        engine, network, _, inboxes = make_net()
        network.per_byte = 1e-6
        f = frame(size=1000)
        network.send(f)
        engine.run_until_idle()
        assert engine.now == pytest.approx(1e-3 + 1e-6 * f.wire_size())

    def test_delay_rule_overrides(self):
        engine, network, _, inboxes = make_net(
            faults=(DelayRule(control=False, delay=5e-3),)
        )
        network.send(frame(control=False))
        network.send(frame(control=True))
        engine.run(until=2e-3)
        assert len(inboxes[2]) == 1  # control frame took the 1ms default
        engine.run(until=10e-3)
        assert len(inboxes[2]) == 2

    def test_counters(self):
        engine, network, _, _ = make_net()
        f = frame(size=50)
        network.send(f)
        network.send(frame(size=70, kind="test.ctl"))
        assert network.frames_sent == {"test.data": 1, "test.ctl": 1}
        assert network.bytes_sent["test.data"] == 50 + FRAME_HEADER_SIZE
        assert network.total_frames("test.") == 2

    def test_unknown_endpoints_rejected(self):
        _, network, _, _ = make_net()
        with pytest.raises(ConfigurationError):
            network.send(frame(src=9))
        with pytest.raises(ConfigurationError):
            network.send(frame(dst=9))


class TestCrashSemantics:
    def test_crashed_sender_sends_nothing(self):
        engine, network, processes, inboxes = make_net()
        processes[1].crash()
        network.send(frame())
        engine.run_until_idle()
        assert inboxes[2] == []
        assert network.frames_dropped == 1

    def test_crashed_destination_drops_frame(self):
        engine, network, processes, inboxes = make_net()
        network.send(frame())
        engine.schedule(0.5e-3, processes[2].crash)
        engine.run_until_idle()
        assert inboxes[2] == []

    def test_in_flight_survives_sender_crash_by_default(self):
        engine, network, processes, inboxes = make_net()
        network.send(frame())
        engine.schedule(0.5e-3, processes[1].crash)
        engine.run_until_idle()
        assert len(inboxes[2]) == 1

    def test_in_flight_lost_with_drop_policy(self):
        """The Section 2.2 scenario needs in-flight data of a crashed
        sender to be lost (dead socket buffers)."""
        engine, network, processes, inboxes = make_net(
            drop_in_flight_of_crashed_sender=True
        )
        network.send(frame())
        engine.schedule(0.5e-3, processes[1].crash)
        engine.run_until_idle()
        assert inboxes[2] == []


class TestContention:
    def test_pipeline_time_includes_all_stages(self):
        engine, network, _, inboxes = make_net(kind="contention")
        f = frame(size=100)
        network.send(f)
        engine.run_until_idle()
        expected = (
            PARAMS.send_overhead
            + PARAMS.wire_overhead
            + PARAMS.wire_per_byte * f.wire_size()
            + PARAMS.recv_overhead
        )
        assert engine.now == pytest.approx(expected)

    def test_medium_serialises_concurrent_senders(self):
        engine, network, _, inboxes = make_net(n=3, kind="contention")
        network.send(frame(src=1, dst=3, size=1000))
        network.send(frame(src=2, dst=3, size=1000))
        engine.run_until_idle()
        wire_each = PARAMS.wire_overhead + PARAMS.wire_per_byte * (
            1000 + FRAME_HEADER_SIZE
        )
        # Both senders' CPUs work in parallel, but the shared medium
        # carries one frame at a time.
        assert network.medium.busy_time == pytest.approx(2 * wire_each)
        assert len(inboxes[3]) == 2

    def test_sender_cpu_serialises_own_frames(self):
        engine, network, processes, inboxes = make_net(n=3, kind="contention")
        network.send(frame(src=1, dst=2))
        network.send(frame(src=1, dst=3))
        engine.run_until_idle()
        assert processes[1].cpu.busy_time == pytest.approx(2 * PARAMS.send_overhead)

    def test_loopback_skips_medium(self):
        engine, network, _, inboxes = make_net(kind="contention")
        network.send(frame(src=1, dst=1))
        engine.run_until_idle()
        assert len(inboxes[1]) == 1
        assert network.medium.jobs_served == 0

    def test_charge_rcv_lookups_occupies_cpu(self):
        engine, network, processes, _ = make_net(kind="contention")
        network.charge_rcv_lookups(1, lookups=10)
        assert processes[1].cpu.busy_time == pytest.approx(10e-6)

    def test_charge_zero_lookups_is_free(self):
        engine, network, processes, _ = make_net(kind="contention")
        network.charge_rcv_lookups(1, lookups=0)
        assert processes[1].cpu.busy_time == 0.0

    def test_drop_in_flight_covers_frames_queued_on_the_medium(self):
        """A crashing sender's frames still queued on the shared medium
        must die with it under the drop policy — previously only frames
        not yet past the sender CPU were dropped."""
        engine, network, processes, inboxes = make_net(
            n=3, kind="contention", drop_in_flight_of_crashed_sender=True
        )
        # Five large frames queue behind each other on the medium
        # (~1ms wire time each); the first delivers before the crash at
        # t=1.5ms, the rest are still in flight and must be lost.
        for _ in range(5):
            network.send(frame(src=1, dst=2, size=10_000))
        engine.schedule(1.5e-3, processes[1].crash)
        engine.run_until_idle()
        assert len(inboxes[2]) == 1
        assert network.frames_dropped == 4

    def test_in_flight_on_medium_survives_without_drop_policy(self):
        engine, network, processes, inboxes = make_net(
            n=3, kind="contention", drop_in_flight_of_crashed_sender=False
        )
        for _ in range(5):
            network.send(frame(src=1, dst=2, size=10_000))
        engine.schedule(1.5e-3, processes[1].crash)
        engine.run_until_idle()
        assert len(inboxes[2]) == 5
