"""Section 3.3.2: why the MR adaptation cannot keep f < n/2.

The paper's argument is an indistinguishability pair: a non-coordinator
``p`` that suspects the coordinator and lacks ``msgs(v)`` receives one
valid echo ``v`` plus ``⌊(n-1)/2⌋`` ⊥ values, and cannot tell whether

* (1) the coordinator is correct and decided — so ``p`` MUST adopt
  ``v`` (else Uniform agreement breaks), or
* (2) the coordinator is faulty and nobody has ``msgs(v)`` — so ``p``
  MUST NOT adopt ``v`` (else No loss breaks).

These tests execute both horns against the *original* MR algorithm run
on identifiers, and then show Algorithm 3 dissolving the dilemma at the
price of ``f < n/3``.
"""

import pytest

from repro.checkers.consensus import ConsensusChecker
from repro.consensus.base import ID_SET_CODEC
from repro.consensus.mostefaoui_raynal import MostefaouiRaynalConsensus
from repro.consensus.mr_indirect import MRIndirectConsensus
from repro.core.events import RDeliverEvent
from repro.core.exceptions import ProtocolViolationError
from repro.core.rcv import ReceivedStore
from tests.helpers import Fabric, app_message, make_fabric


def mount(fabric: Fabric, cls):
    services, stores, decisions = {}, {}, {}
    for pid in fabric.config.processes:
        services[pid] = cls(
            fabric.transports[pid],
            fabric.config,
            fabric.detectors[pid],
            ID_SET_CODEC,
        )
        stores[pid] = ReceivedStore()
        decisions[pid] = {}
        services[pid].on_decide(
            lambda k, v, _pid=pid: decisions[_pid].setdefault(k, v)
        )
    return services, stores, decisions


def give(fabric, stores, pid, message):
    stores[pid].add(message)
    fabric.trace.record(
        RDeliverEvent(time=fabric.engine.now, process=pid, message=message)
    )


def ids(*messages):
    return frozenset(m.mid for m in messages)


class TestOriginalMrOnIdsIsUnfixable:
    def test_horn_2_unconditional_adoption_breaks_no_loss(self):
        """Execution (2): the coordinator's value is backed by nobody
        else; original MR adopts and decides it anyway — the decided
        configuration is v-valent but not v-stable."""
        fabric = make_fabric(3, f=1)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        a = app_message(2)
        give(fabric, stores, 2, a)  # only the coordinator holds msgs({a})
        services[2].propose(1, ids(a))
        services[1].propose(1, frozenset())
        services[3].propose(1, frozenset())
        fabric.run()
        assert decisions[1][1] == ids(a)
        checker = ConsensusChecker(fabric.trace, fabric.config)
        with pytest.raises(ProtocolViolationError, match="v-stability"):
            checker.check_v_stability(1)

    def test_horn_1_shows_why_adoption_cannot_simply_be_removed(self):
        """Execution (1): all processes hold msgs(v); the very same
        adoption rule is what lets a lagging process converge to the
        decided value.  (A 'conservative' MR that refuses unbacked
        values would diverge here — which is why the paper needs the
        quorum changes, not just a filter.)"""
        fabric = make_fabric(3, f=1)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        a = app_message(2)
        for pid in (1, 2, 3):
            give(fabric, stores, pid, a)
        services[2].propose(1, ids(a))
        services[1].propose(1, frozenset())
        services[3].propose(1, frozenset())
        fabric.run()
        for pid in (1, 2, 3):
            assert decisions[pid][1] == ids(a)
        ConsensusChecker(fabric.trace, fabric.config).check_all(
            no_loss=True, v_stability=True
        )


class TestAlgorithmThreeDissolvesTheDilemma:
    def test_unbacked_value_cannot_be_decided_at_n4_f1(self):
        """Algorithm 3 at its bound: the unbacked coordinator value is
        filtered to ⊥ and a later round decides a backed value —
        No loss and v-stability hold."""
        fabric = make_fabric(4, f=1, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, MRIndirectConsensus)
        a = app_message(2)
        b = app_message(1)
        give(fabric, stores, 2, a)
        for pid in (1, 2, 3, 4):
            give(fabric, stores, pid, b)
        services[2].propose(1, ids(a), stores[2].rcv)
        for pid in (1, 3, 4):
            services[pid].propose(1, ids(b), stores[pid].rcv)
        fabric.run()
        assert decisions[1][1] == ids(b)
        ConsensusChecker(fabric.trace, fabric.config).check_all(
            no_loss=True, v_stability=True
        )

    def test_the_price_is_the_quorum_not_the_filter(self):
        """With n=3 (where ⌈(2n+1)/3⌉ = n) a single crash stalls the
        echo quorum — concretely demonstrating why f must be < n/3
        rather than < n/2."""
        fabric = make_fabric(3, f=0)  # declared correctly: tolerates 0
        services, stores, decisions = mount(fabric, MRIndirectConsensus)
        m = app_message(1)
        for pid in (1, 2, 3):
            give(fabric, stores, pid, m)
            services[pid].propose(1, ids(m), stores[pid].rcv)
        # Beyond-bound crash (injected directly; the schedule validator
        # would reject it, which is the library's first line of defence).
        fabric.crash(3, at=0.2e-3)
        fabric.run(until=2.0)
        # The phase-2 quorum of 3 echoes can never be met: nobody decides.
        assert all(1 not in decisions[pid] for pid in (1, 2))
