"""Resilience boundaries: f < n/2 for CT(-indirect), f < n/3 for MR-indirect.

The paper's second contribution is that the MR adaptation *costs*
resilience.  These tests pin the boundary on both sides: the algorithms
keep all their properties at their declared maximum f, and the
configuration layer refuses anything beyond it.
"""

import pytest

from repro import CrashSchedule, StackSpec, SymmetricWorkload, build_system, check_abcast
from repro.checkers.consensus import ConsensusChecker
from repro.consensus.ct_indirect import CTIndirectConsensus
from repro.consensus.mr_indirect import MRIndirectConsensus
from repro.core.config import SystemConfig
from repro.core.exceptions import ResilienceExceededError


class TestDeclaredBounds:
    @pytest.mark.parametrize(
        "n,ct_bound,mr_bound",
        [(3, 1, 0), (4, 1, 1), (5, 2, 1), (6, 2, 1), (7, 3, 2), (9, 4, 2), (10, 4, 3)],
    )
    def test_bounds_follow_the_paper(self, n, ct_bound, mr_bound):
        config = SystemConfig(n=n)
        assert CTIndirectConsensus.resilience_bound(config) == ct_bound
        assert MRIndirectConsensus.resilience_bound(config) == mr_bound

    def test_mr_indirect_strictly_weaker_from_n3(self):
        for n in range(3, 40):
            config = SystemConfig(n=n)
            assert (
                MRIndirectConsensus.resilience_bound(config)
                <= CTIndirectConsensus.resilience_bound(config)
            )


def survive_crashes(consensus: str, n: int, crash_pids: tuple[int, ...]) -> None:
    spec = StackSpec(n=n, abcast="indirect", consensus=consensus, seed=5,
                     fd_detection_delay=10e-3)
    crashes = CrashSchedule.of(*[(pid, 0.05 + 0.02 * i) for i, pid in enumerate(crash_pids)])
    system = build_system(spec, crashes)
    SymmetricWorkload(system, throughput=80, payload_size=50, duration=0.4).install()
    system.run(until=5.0, max_events=10_000_000)
    check_abcast(system.trace, system.config)
    ConsensusChecker(system.trace, system.config).check_all(
        no_loss=True, v_stability=True
    )
    survivors = [p for p in system.config.processes if p not in crash_pids]
    counts = [system.abcasts[p].delivered_count() for p in survivors]
    # Crashed senders take their unsent share of the workload with them;
    # what matters is that the surviving group kept ordering messages.
    assert min(counts) >= 10
    assert len(set(counts)) == 1


class TestAtTheBoundary:
    def test_ct_indirect_survives_two_of_five(self):
        survive_crashes("ct-indirect", n=5, crash_pids=(2, 3))

    def test_ct_indirect_survives_three_of_seven(self):
        survive_crashes("ct-indirect", n=7, crash_pids=(2, 4, 6))

    def test_mr_indirect_survives_one_of_four(self):
        survive_crashes("mr-indirect", n=4, crash_pids=(2,))

    def test_mr_indirect_survives_two_of_seven(self):
        survive_crashes("mr-indirect", n=7, crash_pids=(2, 5))


class TestBeyondTheBoundary:
    def test_mr_indirect_rejects_two_of_five(self):
        """n=5, f=2 is fine for CT-indirect but beyond MR-indirect's
        f < n/3 bound — the library refuses the configuration."""
        spec = StackSpec(n=5, abcast="indirect", consensus="mr-indirect", f=2)
        with pytest.raises(ResilienceExceededError):
            build_system(spec)

    def test_ct_indirect_rejects_half(self):
        spec = StackSpec(n=4, abcast="indirect", consensus="ct-indirect", f=2)
        with pytest.raises(ResilienceExceededError):
            build_system(spec)

    def test_schedule_beyond_f_rejected_even_if_algorithm_allows_more(self):
        spec = StackSpec(n=5, abcast="indirect", consensus="ct-indirect", f=1)
        with pytest.raises(ResilienceExceededError):
            build_system(spec, CrashSchedule.of((1, 0.1), (2, 0.1)))
