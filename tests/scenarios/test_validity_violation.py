"""Section 2.2: executing unmodified consensus on message identifiers
violates the Validity property of atomic broadcast.

The staged execution follows the paper's narrative exactly:

* p2 (the round-1 coordinator of every instance) abroadcasts a large
  message ``m``; its bulk data frames crawl while its consensus control
  frames are fast (separate channels, deep socket buffers — routine on a
  loaded LAN);
* consensus decides ``id(m)`` — under the faulty stack the other
  processes ack blindly, without holding ``m``;
* p2 crashes; the in-flight copies of ``m`` die with its socket buffers;
* ``id(m)`` cannot be removed from the total order, so every later
  message (including ``m2`` from the *correct* p1) is blocked forever.

The identical schedule is then replayed against the indirect stack
(Algorithm 1 + Algorithm 2/3) and against URB + consensus: both deliver
``m2`` — the rcv gate (resp. uniformity) refuses to order an identifier
nobody can back.
"""

import pytest

from repro import (
    CrashSchedule,
    DelayRule,
    StackSpec,
    build_system,
    check_abcast,
    make_payload,
)
from repro.checkers.consensus import ConsensusChecker
from repro.core.exceptions import ProtocolViolationError

#: The §2.2 staging as declarative rules: p2's bulk data crawls, all
#: other traffic is quick (first matching rule wins).
SECTION_22_DELAYS = (
    DelayRule(src=2, control=False, delay=50e-3),
    DelayRule(delay=0.5e-3),
)


def staged_system(abcast: str, consensus: str, n: int = 3):
    spec = StackSpec(
        n=n,
        abcast=abcast,
        consensus=consensus,
        network="constant",
        faults=SECTION_22_DELAYS,
        drop_in_flight_on_crash=True,
        fd="oracle",
        fd_detection_delay=10e-3,
        seed=1,
    )
    system = build_system(spec, CrashSchedule.single(2, 2.5e-3))
    system.processes[2].schedule_at(
        0.0, lambda: system.abcasts[2].abroadcast(make_payload(4000, "m"))
    )
    system.processes[1].schedule_at(
        0.2e-3, lambda: system.abcasts[1].abroadcast(make_payload(10, "m2"))
    )
    system.run(until=2.0, max_events=2_000_000)
    return system


@pytest.mark.parametrize("consensus", ["ct", "mr"])
class TestFaultyStackViolatesValidity:
    def test_correct_senders_message_is_blocked_forever(self, consensus):
        system = staged_system("faulty-ids", consensus)
        with pytest.raises(ProtocolViolationError, match="Validity"):
            check_abcast(system.trace, system.config)
        # Nothing was ever adelivered at the survivors: the lost id(m)
        # heads the total order.
        assert system.trace.adelivery_sequence(1) == []
        assert system.trace.adelivery_sequence(3) == []

    def test_the_lost_id_was_decided(self, consensus):
        """The violation mechanism: consensus really did decide id(m)
        while no surviving process held m."""
        system = staged_system("faulty-ids", consensus)
        first = system.trace.first_decision(1)
        assert first is not None
        lost = {mid for mid in first.value if mid.origin == 2}
        assert lost, "the crashed sender's id was ordered"
        checker = ConsensusChecker(system.trace, system.config)
        with pytest.raises(ProtocolViolationError, match="No loss"):
            checker.check_no_loss(1)


class TestCorrectStacksSurviveTheSameSchedule:
    @pytest.mark.parametrize(
        "abcast,consensus,n",
        [
            ("indirect", "ct-indirect", 3),
            ("indirect", "mr-indirect", 4),
            ("urb-ids", "ct", 3),
        ],
    )
    def test_m2_is_delivered(self, abcast, consensus, n):
        system = staged_system(abcast, consensus, n=n)
        check_abcast(system.trace, system.config)
        seq = system.trace.adelivery_sequence(1)
        assert any(mid.origin == 1 for mid in seq), "m2 must be delivered"

    def test_indirect_decisions_all_satisfy_no_loss(self):
        system = staged_system("indirect", "ct-indirect")
        ConsensusChecker(system.trace, system.config).check_all(
            no_loss=True, v_stability=True
        )

    def test_faulty_stack_is_fine_without_crashes(self):
        """The bug is latent: the very same faulty stack passes every
        check when nobody crashes — which is why it shipped in real
        group-communication systems."""
        spec = StackSpec(
            n=3,
            abcast="faulty-ids",
            consensus="ct",
            network="constant",
            faults=SECTION_22_DELAYS,
            fd="oracle",
            seed=1,
        )
        system = build_system(spec)  # no crash schedule
        system.processes[2].schedule_at(
            0.0, lambda: system.abcasts[2].abroadcast(make_payload(4000, "m"))
        )
        system.processes[1].schedule_at(
            0.2e-3, lambda: system.abcasts[1].abroadcast(make_payload(10, "m2"))
        )
        system.run(until=2.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        assert len(system.trace.adelivery_sequence(1)) == 2
