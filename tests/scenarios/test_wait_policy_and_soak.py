"""The wait-for-messages ablation under crashes, and a long soak run.

The nack policy (Algorithm 2 as published) and the wait policy must be
*equally safe*; they differ in liveness dynamics.  The soak test runs a
larger, longer, heartbeat-FD system through two crashes and a load
spike and asserts the full property set — the closest thing to a
chaos test the deterministic engine allows.
"""

from repro import (
    CrashSchedule,
    StackSpec,
    SymmetricWorkload,
    build_system,
    check_abcast,
    make_payload,
)
from repro.checkers.broadcast import BroadcastChecker
from repro.checkers.consensus import ConsensusChecker


class TestWaitPolicyUnderCrashes:
    def test_wait_policy_survives_coordinator_crash(self):
        """Waiting on a dead coordinator's missing messages must resolve
        through the failure detector (the suspicion branch)."""
        spec = StackSpec(
            n=3,
            abcast="indirect",
            consensus="ct-indirect",
            ct_missing_policy="wait",
            seed=5,
            fd_detection_delay=15e-3,
        )
        system = build_system(spec, CrashSchedule.single(2, 0.06))
        SymmetricWorkload(
            system, throughput=150, payload_size=100, duration=0.3
        ).install()
        system.run(until=3.0, max_events=5_000_000)
        check_abcast(system.trace, system.config)
        ConsensusChecker(system.trace, system.config).check_all(
            no_loss=True, v_stability=True
        )

    def test_wait_policy_in_the_section22_schedule(self):
        """Even with waiting instead of nacking, the staged §2.2 crash
        cannot produce a validity violation: the wait resolves via
        suspicion of the crashed sender-coordinator."""
        from repro import DelayRule

        spec = StackSpec(
            n=3,
            abcast="indirect",
            consensus="ct-indirect",
            ct_missing_policy="wait",
            network="constant",
            faults=(DelayRule(src=2, control=False, delay=50e-3),
                    DelayRule(delay=0.5e-3)),
            drop_in_flight_on_crash=True,
            fd_detection_delay=10e-3,
            seed=1,
        )
        system = build_system(spec, CrashSchedule.single(2, 2.5e-3))
        system.processes[2].schedule_at(
            0.0, lambda: system.abcasts[2].abroadcast(make_payload(4000, "m"))
        )
        system.processes[1].schedule_at(
            0.2e-3, lambda: system.abcasts[1].abroadcast(make_payload(10, "m2"))
        )
        system.run(until=2.0, max_events=2_000_000)
        check_abcast(system.trace, system.config)
        assert any(
            mid.origin == 1 for mid in system.trace.adelivery_sequence(1)
        )


class TestSoak:
    def test_long_run_with_heartbeat_fd_two_crashes_and_load_spike(self):
        spec = StackSpec(
            n=5,
            abcast="indirect",
            consensus="ct-indirect",
            rb="sender",
            fd="heartbeat",
            heartbeat_interval=15e-3,
            heartbeat_timeout=80e-3,
            seed=13,
        )
        system = build_system(spec, CrashSchedule.of((2, 0.4), (5, 0.8)))
        # Base load plus a mid-run spike.
        SymmetricWorkload(
            system, throughput=120, payload_size=200, duration=1.2
        ).install()
        SymmetricWorkload(
            system, throughput=600, payload_size=50, duration=0.2, start=0.5
        ).install()
        system.run(until=6.0, max_events=30_000_000)

        check_abcast(system.trace, system.config)
        BroadcastChecker(system.trace, system.config).check_all()
        ConsensusChecker(system.trace, system.config).check_all(
            no_loss=True, v_stability=True
        )
        survivors = [1, 3, 4]
        sequences = {
            p: tuple(system.trace.adelivery_sequence(p)) for p in survivors
        }
        assert len(set(sequences.values())) == 1
        assert len(sequences[1]) > 100
