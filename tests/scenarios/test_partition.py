"""Partition-window scenarios: a timed split of the group.

Atomic broadcast over ◇S consensus tolerates a minority being cut off:
the majority side keeps ordering and delivering, the minority side
stalls, and safety (prefix-consistent total order) holds throughout —
there is no view-synchronous membership here, so a healed minority
process stays behind until a state transfer it does not have.  These
are exactly the dynamics the tests pin.
"""

import pytest

from repro import (
    CrashSchedule,
    PartitionSchedule,
    PartitionWindow,
    StackSpec,
    SymmetricWorkload,
    build_system,
)
from repro.checkers.abcast import AbcastChecker


def check_safety(system):
    """Safety-only property set.  A finite partitioned trace
    legitimately fails abcast *Validity* and *Agreement* (the stalled
    minority misses messages until the partition heals plus a state
    transfer it does not have — liveness), but integrity and total
    order must hold unconditionally: nobody delivers twice, nobody
    delivers out of order, no fork."""
    checker = AbcastChecker(system.trace, system.config)
    checker.check_uniform_integrity()
    checker.check_uniform_total_order()


def partitioned_system(windows=(), schedule=None, seed=3):
    spec = StackSpec(
        n=3,
        abcast="indirect",
        consensus="ct-indirect",
        rb="flood",
        network="constant",
        faults=tuple(windows),
        seed=seed,
    )
    system = build_system(spec, partitions=schedule)
    SymmetricWorkload(
        system, throughput=100, payload_size=50, duration=0.6
    ).install()
    system.run(until=2.0, max_events=5_000_000)
    return system


WINDOW = PartitionWindow(start=0.2, end=0.45, groups=((1, 2), (3,)))


class TestPartitionWindowScenario:
    def test_majority_side_keeps_delivering(self):
        system = partitioned_system(windows=(WINDOW,))
        check_safety(system)  # safety throughout
        majority = system.trace.adelivery_sequence(1)
        assert system.trace.adelivery_sequence(2) == majority
        # Deliveries kept happening during the window on the majority side.
        in_window = [
            e
            for e in system.trace.adeliveries()
            if e.process == 1 and WINDOW.start < e.time < WINDOW.end
        ]
        assert in_window

    def test_minority_side_stalls_on_a_consistent_prefix(self):
        system = partitioned_system(windows=(WINDOW,))
        majority = system.trace.adelivery_sequence(1)
        minority = system.trace.adelivery_sequence(3)
        assert len(minority) < len(majority)
        assert majority[: len(minority)] == minority  # prefix, no fork

    def test_without_the_window_everyone_stays_level(self):
        system = partitioned_system(windows=())
        seqs = {
            pid: tuple(system.trace.adelivery_sequence(pid))
            for pid in (1, 2, 3)
        }
        assert len(set(seqs.values())) == 1
        assert len(seqs[1]) > 0

    def test_schedule_arming_is_equivalent_to_spec_faults(self):
        """PartitionSchedule (armed alongside CrashSchedule) and a
        PartitionWindow in StackSpec.faults produce identical runs."""
        via_spec = partitioned_system(windows=(WINDOW,))
        via_schedule = partitioned_system(
            schedule=PartitionSchedule(windows=(WINDOW,))
        )
        for pid in (1, 2, 3):
            assert via_spec.trace.adelivery_sequence(
                pid
            ) == via_schedule.trace.adelivery_sequence(pid)
        assert (
            via_spec.network.pipeline.partitioned
            == via_schedule.network.pipeline.partitioned
            > 0
        )

    def test_schedule_validates_process_ids(self):
        from repro.core.exceptions import ConfigurationError

        schedule = PartitionSchedule.single(0.1, 0.2, groups=((1, 9),))
        with pytest.raises(ConfigurationError, match="unknown p9"):
            build_system(StackSpec(n=3), partitions=schedule)

    def test_partition_composes_with_crashes(self):
        """A crash on the majority side *during* the partition: the
        remaining majority pair (p1 alone cannot decide) stalls until
        the window heals p3 back in — then p1+p3 resume.  Safety holds
        through the whole episode."""
        spec = StackSpec(
            n=3,
            abcast="indirect",
            consensus="ct-indirect",
            network="constant",
            faults=(WINDOW,),
            fd_detection_delay=15e-3,
            seed=5,
        )
        system = build_system(spec, CrashSchedule.single(2, 0.3))
        SymmetricWorkload(
            system, throughput=100, payload_size=50, duration=0.6
        ).install()
        system.run(until=3.0, max_events=5_000_000)
        check_safety(system)
        # p1 and p3 converge once the partition heals.
        s1 = system.trace.adelivery_sequence(1)
        s3 = system.trace.adelivery_sequence(3)
        shorter = min(len(s1), len(s3))
        assert shorter > 0
        assert s1[:shorter] == s3[:shorter]
