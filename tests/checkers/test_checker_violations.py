"""Every checker property demonstrably fires on a violating trace.

The schedule-exploration subsystem's verdicts are exactly as
trustworthy as the checkers: a property whose check never fires would
silently turn the explorer into a rubber stamp.  This module keeps an
explicit violating-trace builder for **every** ``check_*`` method of
every checker class — and a completeness test that fails the moment a
new check method is added without a demonstrated violation.

(``tests/checkers/test_checkers.py`` covers adjacent cases — clean
traces, crash exemptions; this file is the exhaustive "does it fire"
matrix.)
"""

import pytest

from repro.checkers.abcast import AbcastChecker
from repro.checkers.broadcast import BroadcastChecker
from repro.checkers.consensus import ConsensusChecker
from repro.checkers.shard import ShardChecker
from repro.core.config import SystemConfig
from repro.shard.ops import KeyOp, TxAbort, TxCommit, TxPrepare
from repro.shard.router import shard_for
from repro.core.events import (
    ABroadcastEvent,
    ADeliverEvent,
    CrashEvent,
    DecideEvent,
    ProposeEvent,
    RBroadcastEvent,
    RDeliverEvent,
)
from repro.core.exceptions import ProtocolViolationError
from repro.core.identifiers import MessageId
from repro.core.message import AppMessage, make_payload
from repro.sim.trace import Trace


def msg(origin, seq=1):
    return AppMessage(
        mid=MessageId(origin, seq), sender=origin, payload=make_payload(1)
    )


def trace_of(*events):
    trace = Trace()
    for event in events:
        trace.record(event)
    return trace


def op_msg(origin, seq, content):
    """A message carrying a shard operation as its payload content."""
    return AppMessage(
        mid=MessageId(origin, seq),
        sender=origin,
        payload=make_payload(8, content=content),
    )


M1, M2, M3 = msg(1), msg(2), msg(3)
IDS1 = frozenset({M1.mid})
CFG2 = SystemConfig(n=2, f=0)
CFG3 = SystemConfig(n=3, f=1)

# Keys with known owners under the stable 2-shard hash (computed, not
# guessed — shard_for is process-independent, so this is deterministic).
_LETTERS = [chr(c) for c in range(ord("A"), ord("Z") + 1)]
K0, K0B = [k for k in _LETTERS if shard_for(k, 2) == 0][:2]
K1 = next(k for k in _LETTERS if shard_for(k, 2) == 1)


# ----------------------------------------------------------------------
# One violating scenario per check method:
#   name -> (checker class, config, trace builder, method args, match)
# ----------------------------------------------------------------------

VIOLATIONS = {
    # --- atomic broadcast ---------------------------------------------
    "abcast.check_validity": (
        AbcastChecker, CFG2,
        lambda: trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            # correct p1 never adelivers its own message
        ),
        (), "Validity",
    ),
    "abcast.check_uniform_integrity": (
        AbcastChecker, CFG2,
        lambda: trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            ADeliverEvent(time=0.1, process=2, message=M1),
            ADeliverEvent(time=0.2, process=2, message=M1),  # duplicate
        ),
        (), "integrity",
    ),
    "abcast.check_uniform_agreement": (
        AbcastChecker, SystemConfig(n=2, f=1),
        lambda: trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            ADeliverEvent(time=0.1, process=1, message=M1),
            CrashEvent(time=0.2, process=1),
            # even a faulty adeliverer obliges every correct process
        ),
        (), "agreement",
    ),
    "abcast.check_uniform_total_order": (
        AbcastChecker, CFG2,
        lambda: trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            ABroadcastEvent(time=0.0, process=2, message=M2),
            ADeliverEvent(time=0.1, process=1, message=M1),
            ADeliverEvent(time=0.2, process=1, message=M2),
            ADeliverEvent(time=0.1, process=2, message=M2),
            ADeliverEvent(time=0.2, process=2, message=M1),
        ),
        (), "total order",
    ),
    "abcast.check_correct_prefix_consistency": (
        AbcastChecker, CFG2,
        lambda: trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            ABroadcastEvent(time=0.0, process=2, message=M2),
            # same total order, but p2's sequence is a strict prefix —
            # agreement-style divergence caught wholesale
            ADeliverEvent(time=0.1, process=1, message=M1),
            ADeliverEvent(time=0.2, process=1, message=M2),
            ADeliverEvent(time=0.1, process=2, message=M1),
        ),
        (), "consistency",
    ),
    "abcast.check_hypothesis_a": (
        AbcastChecker, CFG2,
        lambda: trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.05, process=1, message=M1),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS1),
            # decided + held by correct p1, never reaches correct p2
        ),
        (), "Hypothesis A",
    ),
    # --- reliable broadcast -------------------------------------------
    "broadcast.check_validity": (
        BroadcastChecker, CFG2,
        lambda: trace_of(RBroadcastEvent(time=0.0, process=1, message=M1)),
        (), "RB Validity",
    ),
    "broadcast.check_uniform_integrity": (
        BroadcastChecker, CFG2,
        lambda: trace_of(
            RDeliverEvent(time=0.1, process=2, message=M1),  # never broadcast
        ),
        (), "integrity",
    ),
    "broadcast.check_agreement": (
        BroadcastChecker, CFG2,
        lambda: trace_of(
            RBroadcastEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.0, process=1, message=M1),
            # correct p2 misses it
        ),
        (), "RB Agreement",
    ),
    "broadcast.check_uniform_agreement": (
        BroadcastChecker, SystemConfig(n=2, f=1),
        lambda: trace_of(
            RBroadcastEvent(time=0.0, process=1, message=M1, uniform=True),
            RDeliverEvent(time=0.0, process=1, message=M1, uniform=True),
            CrashEvent(time=0.05, process=1),
        ),
        (), "Uniform agreement",
    ),
    # --- consensus -----------------------------------------------------
    "consensus.check_uniform_integrity": (
        ConsensusChecker, CFG2,
        lambda: trace_of(
            DecideEvent(time=0.1, process=1, instance=1, value=IDS1),
            DecideEvent(time=0.2, process=1, instance=1, value=IDS1),
        ),
        (1,), "integrity",
    ),
    "consensus.check_uniform_agreement": (
        ConsensusChecker, CFG2,
        lambda: trace_of(
            DecideEvent(time=0.1, process=1, instance=1, value=IDS1),
            DecideEvent(time=0.2, process=2, instance=1, value=frozenset()),
        ),
        (1,), "agreement",
    ),
    "consensus.check_uniform_validity": (
        ConsensusChecker, CFG2,
        lambda: trace_of(
            ProposeEvent(time=0.0, process=1, instance=1, value=frozenset()),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS1),
        ),
        (1,), "validity",
    ),
    "consensus.check_termination": (
        ConsensusChecker, CFG2,
        lambda: trace_of(
            ProposeEvent(time=0.0, process=1, instance=1, value=IDS1),
            ProposeEvent(time=0.0, process=2, instance=1, value=IDS1),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS1),
        ),
        (1,), "Termination",
    ),
    "consensus.check_no_loss": (
        ConsensusChecker, SystemConfig(n=2, f=1),
        lambda: trace_of(
            RDeliverEvent(time=0.0, process=1, message=M1),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS1),
            CrashEvent(time=0.05, process=1),
            # sole holder crashed before the decision: no correct holder
        ),
        (1,), "No loss",
    ),
    "consensus.check_v_stability": (
        ConsensusChecker, CFG3,
        lambda: trace_of(
            RDeliverEvent(time=0.0, process=1, message=M1),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS1),
            # one holder ever; f + 1 = 2 needed
        ),
        (1,), "v-stability",
    ),
    # --- sharded service (checker takes a *list* of per-group traces) --
    "shard.check_key_placement": (
        ShardChecker, CFG2,
        lambda: [
            trace_of(
                # group 0 delivers an operation on K1 — owned by group 1
                ADeliverEvent(
                    time=0.1, process=1,
                    message=op_msg(1, 1, KeyOp(K1, "deposit", 1)),
                ),
            ),
            trace_of(),
        ],
        (), "placement",
    ),
    "shard.check_per_key_order": (
        ShardChecker, CFG2,
        lambda: [
            trace_of(
                # p1 and p2 deliver the two K0 operations in opposite
                # orders — a per-key order contradiction inside group 0
                ADeliverEvent(
                    time=0.1, process=1,
                    message=op_msg(1, 1, KeyOp(K0, "deposit", 1)),
                ),
                ADeliverEvent(
                    time=0.2, process=1,
                    message=op_msg(2, 1, KeyOp(K0, "withdraw", 1)),
                ),
                ADeliverEvent(
                    time=0.1, process=2,
                    message=op_msg(2, 1, KeyOp(K0, "withdraw", 1)),
                ),
                ADeliverEvent(
                    time=0.2, process=2,
                    message=op_msg(1, 1, KeyOp(K0, "deposit", 1)),
                ),
            ),
            trace_of(),
        ],
        (), "per-key order",
    ),
    "shard.check_outcome_order": (
        ShardChecker, CFG2,
        lambda: [
            trace_of(
                # outcome delivered before the prepare leg it finalizes
                ADeliverEvent(
                    time=0.1, process=1,
                    message=op_msg(1, 1, TxCommit("tx1")),
                ),
                ADeliverEvent(
                    time=0.2, process=1,
                    message=op_msg(1, 2, TxPrepare("tx1", K0, "debit", 1)),
                ),
            ),
            trace_of(),
        ],
        (), "outcome order",
    ),
    "shard.check_commit_atomicity": (
        ShardChecker, CFG2,
        lambda: [
            trace_of(
                ADeliverEvent(
                    time=0.1, process=1,
                    message=op_msg(1, 1, TxPrepare("tx1", K0, "debit", 1)),
                ),
                ADeliverEvent(
                    time=0.2, process=1,
                    message=op_msg(1, 2, TxCommit("tx1")),
                ),
            ),
            trace_of(
                ADeliverEvent(
                    time=0.1, process=1,
                    message=op_msg(2, 1, TxPrepare("tx1", K1, "credit", 1)),
                ),
                # group 1 aborts what group 0 committed
                ADeliverEvent(
                    time=0.2, process=1,
                    message=op_msg(2, 2, TxAbort("tx1")),
                ),
            ),
        ],
        (), "atomicity",
    ),
}

CHECKERS = (AbcastChecker, BroadcastChecker, ConsensusChecker, ShardChecker)
PREFIX = {
    AbcastChecker: "abcast",
    BroadcastChecker: "broadcast",
    ConsensusChecker: "consensus",
    ShardChecker: "shard",
}


def test_every_check_method_has_a_firing_scenario():
    """Completeness guard: adding a check without a violating trace here
    fails this test, not silently weakens the explorer."""
    expected = {
        f"{PREFIX[cls]}.{name}"
        for cls in CHECKERS
        for name in dir(cls)
        if name.startswith("check_") and name != "check_all"
    }
    assert expected == set(VIOLATIONS)


@pytest.mark.parametrize("case", sorted(VIOLATIONS))
def test_property_fires(case):
    cls, config, build, args, match = VIOLATIONS[case]
    checker = cls(build(), config)
    method = getattr(checker, case.split(".", 1)[1])
    with pytest.raises(ProtocolViolationError, match=match):
        method(*args)


@pytest.mark.parametrize("case", sorted(VIOLATIONS))
def test_check_all_also_reports_it(case):
    """The aggregate entry points must reach every individual check."""
    cls, config, build, args, match = VIOLATIONS[case]
    checker = cls(build(), config)
    with pytest.raises(ProtocolViolationError):
        if cls is BroadcastChecker:
            checker.check_all(uniform=True)
        elif cls is ConsensusChecker:
            checker.check_all(no_loss=True, v_stability=True)
        else:
            checker.check_all(expect_quiescent=True)


def test_v_stability_counts_holders_that_crashed_after_receiving():
    """The fixed stability semantics: a holder crashing between its ack
    and the decision does not subtract from the holder count (the ≤ f
    total-crash bound is what converts f + 1 holders into No loss)."""
    trace = trace_of(
        RDeliverEvent(time=0.0, process=1, message=M1),
        RDeliverEvent(time=0.0, process=2, message=M1),
        CrashEvent(time=0.05, process=1),
        DecideEvent(time=0.1, process=3, instance=1, value=IDS1),
    )
    checker = ConsensusChecker(trace, CFG3)
    checker.check_v_stability(1)   # 2 holders ever: p1 (crashed), p2
    checker.check_no_loss(1)       # p2 is the surviving correct holder
    assert trace.holders_at(IDS1, 0.1) == frozenset({2})
    assert trace.holders_at(IDS1, 0.1, include_crashed=True) == frozenset({1, 2})
