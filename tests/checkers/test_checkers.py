"""The checkers must detect seeded violations (tests of the tests).

Every checker is fed hand-built traces containing exactly one violation
and must name the violated property; clean traces must pass.
"""

import pytest

from repro.checkers.abcast import AbcastChecker
from repro.checkers.broadcast import BroadcastChecker
from repro.checkers.consensus import ConsensusChecker
from repro.core.config import SystemConfig
from repro.core.events import (
    ABroadcastEvent,
    ADeliverEvent,
    CrashEvent,
    DecideEvent,
    ProposeEvent,
    RBroadcastEvent,
    RDeliverEvent,
)
from repro.core.exceptions import ProtocolViolationError
from repro.core.identifiers import MessageId
from repro.core.message import AppMessage, make_payload
from repro.sim.trace import Trace


def msg(origin, seq):
    return AppMessage(
        mid=MessageId(origin, seq), sender=origin, payload=make_payload(1)
    )


def trace_of(*events):
    trace = Trace()
    for e in events:
        trace.record(e)
    return trace


M1, M2 = msg(1, 1), msg(2, 1)
CFG = SystemConfig(n=2, f=0)


class TestBroadcastChecker:
    def test_clean_trace_passes(self):
        trace = trace_of(
            RBroadcastEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.1, process=2, message=M1),
        )
        BroadcastChecker(trace, CFG).check_all()

    def test_detects_validity_violation(self):
        trace = trace_of(RBroadcastEvent(time=0.0, process=1, message=M1))
        with pytest.raises(ProtocolViolationError, match="RB Validity"):
            BroadcastChecker(trace, CFG).check_validity()

    def test_detects_duplicate_delivery(self):
        trace = trace_of(
            RBroadcastEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.1, process=2, message=M1),
            RDeliverEvent(time=0.2, process=2, message=M1),
        )
        with pytest.raises(ProtocolViolationError, match="integrity"):
            BroadcastChecker(trace, CFG).check_uniform_integrity()

    def test_detects_spurious_delivery(self):
        trace = trace_of(RDeliverEvent(time=0.1, process=2, message=M1))
        with pytest.raises(ProtocolViolationError, match="integrity"):
            BroadcastChecker(trace, CFG).check_uniform_integrity()

    def test_detects_agreement_violation(self):
        trace = trace_of(
            RBroadcastEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.0, process=1, message=M1),
        )
        with pytest.raises(ProtocolViolationError, match="Agreement"):
            BroadcastChecker(trace, CFG).check_agreement()

    def test_crashed_process_exempt_from_agreement(self):
        trace = trace_of(
            RBroadcastEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.0, process=1, message=M1),
            CrashEvent(time=0.05, process=2),
        )
        BroadcastChecker(trace, SystemConfig(n=2, f=1)).check_agreement()

    def test_detects_uniform_agreement_violation(self):
        trace = trace_of(
            RBroadcastEvent(time=0.0, process=1, message=M1, uniform=True),
            RDeliverEvent(time=0.0, process=1, message=M1, uniform=True),
            CrashEvent(time=0.05, process=1),
        )
        # p1 (faulty) delivered; correct p2 never did.
        with pytest.raises(ProtocolViolationError, match="Uniform agreement"):
            BroadcastChecker(trace, SystemConfig(n=2, f=1)).check_uniform_agreement()


IDS = frozenset({M1.mid})


class TestConsensusChecker:
    def clean(self):
        return trace_of(
            ProposeEvent(time=0.0, process=1, instance=1, value=IDS),
            ProposeEvent(time=0.0, process=2, instance=1, value=IDS),
            RDeliverEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.0, process=2, message=M1),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
            DecideEvent(time=0.2, process=2, instance=1, value=IDS),
        )

    def test_clean_trace_passes_all(self):
        ConsensusChecker(self.clean(), SystemConfig(n=2, f=1)).check_all(
            no_loss=True, v_stability=True
        )

    def test_detects_disagreement(self):
        trace = trace_of(
            ProposeEvent(time=0.0, process=1, instance=1, value=IDS),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
            DecideEvent(time=0.2, process=2, instance=1, value=frozenset()),
        )
        with pytest.raises(ProtocolViolationError, match="agreement"):
            ConsensusChecker(trace, CFG).check_uniform_agreement(1)

    def test_detects_double_decide(self):
        trace = trace_of(
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
            DecideEvent(time=0.2, process=1, instance=1, value=IDS),
        )
        with pytest.raises(ProtocolViolationError, match="integrity"):
            ConsensusChecker(trace, CFG).check_uniform_integrity(1)

    def test_detects_invented_value(self):
        trace = trace_of(
            ProposeEvent(time=0.0, process=1, instance=1, value=frozenset()),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
        )
        with pytest.raises(ProtocolViolationError, match="validity"):
            ConsensusChecker(trace, CFG).check_uniform_validity(1)

    def test_detects_non_termination(self):
        trace = trace_of(
            ProposeEvent(time=0.0, process=1, instance=1, value=IDS),
            ProposeEvent(time=0.0, process=2, instance=1, value=IDS),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
        )
        with pytest.raises(ProtocolViolationError, match="Termination"):
            ConsensusChecker(trace, CFG).check_termination(1)

    def test_detects_no_loss_violation(self):
        trace = trace_of(
            ProposeEvent(time=0.0, process=1, instance=1, value=IDS),
            # decision at t=0.1 but NOBODY rdelivered M1
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
        )
        with pytest.raises(ProtocolViolationError, match="No loss"):
            ConsensusChecker(trace, CFG).check_no_loss(1)

    def test_no_loss_requires_correct_holder(self):
        trace = trace_of(
            RDeliverEvent(time=0.0, process=1, message=M1),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
            CrashEvent(time=0.5, process=1),  # the only holder is faulty
        )
        with pytest.raises(ProtocolViolationError, match="No loss"):
            ConsensusChecker(trace, SystemConfig(n=2, f=1)).check_no_loss(1)

    def test_v_stability_needs_f_plus_1_holders(self):
        trace = trace_of(
            RDeliverEvent(time=0.0, process=1, message=M1),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
        )
        with pytest.raises(ProtocolViolationError, match="v-stability"):
            ConsensusChecker(trace, SystemConfig(n=3, f=1)).check_v_stability(1)


class TestAbcastChecker:
    def test_detects_total_order_violation(self):
        trace = trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            ABroadcastEvent(time=0.0, process=2, message=M2),
            ADeliverEvent(time=0.1, process=1, message=M1),
            ADeliverEvent(time=0.2, process=1, message=M2),
            ADeliverEvent(time=0.1, process=2, message=M2),
            ADeliverEvent(time=0.2, process=2, message=M1),
        )
        with pytest.raises(ProtocolViolationError, match="total order"):
            AbcastChecker(trace, CFG).check_uniform_total_order()

    def test_detects_uniform_agreement_violation_even_by_faulty(self):
        trace = trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            ADeliverEvent(time=0.1, process=1, message=M1),
            CrashEvent(time=0.2, process=1),
        )
        # The faulty p1 adelivered; correct p2 must too.
        with pytest.raises(ProtocolViolationError, match="agreement"):
            AbcastChecker(trace, SystemConfig(n=2, f=1)).check_uniform_agreement()

    def test_detects_invented_message(self):
        trace = trace_of(ADeliverEvent(time=0.1, process=1, message=M1))
        with pytest.raises(ProtocolViolationError, match="integrity"):
            AbcastChecker(trace, CFG).check_uniform_integrity()

    def test_detects_hypothesis_a_violation(self):
        trace = trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.05, process=1, message=M1),
            DecideEvent(time=0.1, process=1, instance=1, value=IDS),
            DecideEvent(time=0.1, process=2, instance=1, value=IDS),
            # p2 never rdelivers M1 although correct p1 holds it.
        )
        with pytest.raises(ProtocolViolationError, match="Hypothesis A"):
            AbcastChecker(trace, CFG).check_hypothesis_a()

    def test_clean_trace_passes(self):
        trace = trace_of(
            ABroadcastEvent(time=0.0, process=1, message=M1),
            RDeliverEvent(time=0.02, process=1, message=M1),
            RDeliverEvent(time=0.03, process=2, message=M1),
            ADeliverEvent(time=0.1, process=1, message=M1),
            ADeliverEvent(time=0.1, process=2, message=M1),
        )
        AbcastChecker(trace, CFG).check_all()
