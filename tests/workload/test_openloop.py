"""Open-loop aggregate sources: Poisson and MMPP bursty arrivals.

Determinism is the load-bearing property: the whole arrival sequence
must be a pure function of the seed — identical when replayed from the
raw RNG stream, identical across pool worker processes, and identical
when a cached suite point is served instead of recomputed.
"""

import pytest

from repro import BurstyWorkload, PoissonWorkload, StackSpec, build_system
from repro.core.exceptions import ConfigurationError
from repro.harness.experiment import ExperimentSpec
from repro.harness.runner import parallel_map, run_suite
from repro.sim.rng import RngRegistry
from repro.stack.layers import WORKLOADS


def make(cls=PoissonWorkload, throughput=300.0, duration=0.5, seed=0, n=3,
         **kwargs):
    system = build_system(StackSpec(n=n, seed=seed))
    wl = cls(
        system, throughput=throughput, payload_size=32, duration=duration,
        **kwargs,
    )
    return system, wl


def replay_poisson(seed, n, throughput, duration):
    """The arrival sequence, replayed draw for draw from the stream.

    One expovariate gap per arrival plus one ``randrange`` entry-replica
    pick, all from the single ``workload.aggregate`` stream — exactly
    the draws ``PoissonWorkload`` makes on a crash-free run.
    """
    rng = RngRegistry(seed=seed).stream(PoissonWorkload.STREAM)
    times, origins = [], []
    t = rng.expovariate(throughput)
    while t < duration:
        times.append(t)
        origins.append(1 + rng.randrange(n))
        t += rng.expovariate(throughput)
    return times, origins


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("poisson", PoissonWorkload), ("bursty", BurstyWorkload),
    ])
    def test_registered_with_aggregate_meta(self, name, cls):
        assert name in WORKLOADS
        entry = WORKLOADS.get(name)
        assert entry.get("aggregate") is True
        # The per-replica sources are *not* aggregate: the shard sweep
        # keys on this flag to decide what accepts a sink.
        assert WORKLOADS.get("symmetric").get("aggregate") is None
        system, _ = make()
        built = entry.factory(
            system, throughput=100.0, payload_size=8, duration=0.1,
            arrivals="poisson",
        )
        assert isinstance(built, cls)

    def test_factory_passes_sink_through(self):
        system, _ = make()
        arrivals = []
        built = WORKLOADS.get("poisson").factory(
            system, throughput=100.0, payload_size=8, duration=0.1,
            sink=arrivals.append,
        )
        assert built.sink == arrivals.append


class TestPoissonWorkload:
    def test_arrivals_match_stream_replay(self):
        system, wl = make(throughput=400.0, duration=0.6, seed=21)
        assert wl.install() == 1
        system.run(until=3.0, max_events=5_000_000)
        times, origins = replay_poisson(21, 3, 400.0, 0.6)
        events = system.trace.abroadcasts()
        assert [e.time for e in events] == times
        assert [e.message.mid.origin for e in events] == origins
        assert wl.sent == len(times)

    def test_single_chained_timer_for_whole_group(self):
        system, wl = make(throughput=2000.0, duration=5.0)
        before = system.engine.pending()
        wl.install()
        assert system.engine.pending() - before == 1

    def test_same_seed_same_arrivals(self):
        runs = []
        for _ in range(2):
            system, wl = make(seed=9)
            wl.install()
            system.run(until=2.0, max_events=3_000_000)
            runs.append([e.time for e in system.trace.abroadcasts()])
        assert runs[0] == runs[1]

    def test_sink_bypasses_direct_injection(self):
        arrivals = []
        system, wl = make(duration=0.3, sink=arrivals.append)
        wl.install()
        system.run(until=1.0, max_events=1_000_000)
        assert wl.sent == len(arrivals) > 0
        assert system.trace.abroadcasts() == []  # nothing hit the stack

    def test_arrivals_skip_crashed_replicas(self):
        system, wl = make(throughput=500.0, duration=0.3)
        wl.install()
        system.processes[1].crash()
        system.run(until=2.0, max_events=3_000_000)
        assert wl.sent > 0
        assert all(
            e.message.mid.origin != 1 for e in system.trace.abroadcasts()
        )

    def test_offered_load_close_to_nominal(self):
        system, wl = make(throughput=400.0, duration=1.0)
        wl.install()
        system.run(until=1.0, max_events=3_000_000)
        assert wl.sent == pytest.approx(400, rel=0.25)

    def test_validation(self):
        system = build_system(StackSpec(n=3))
        with pytest.raises(ConfigurationError):
            PoissonWorkload(system, throughput=0, payload_size=1, duration=1)
        with pytest.raises(ConfigurationError):
            PoissonWorkload(system, throughput=10, payload_size=1, duration=0)
        with pytest.raises(ConfigurationError):
            PoissonWorkload(
                system, throughput=10, payload_size=1, duration=1,
                arrivals="mmpp",
            )


class TestBurstyWorkload:
    def test_same_seed_same_arrivals(self):
        runs = []
        for _ in range(2):
            system, wl = make(BurstyWorkload, throughput=400.0, duration=1.0,
                              seed=13)
            assert wl.install() == 1
            system.run(until=3.0, max_events=5_000_000)
            runs.append([e.time for e in system.trace.abroadcasts()])
        assert runs[0] == runs[1] and len(runs[0]) > 0

    def test_average_rate_matches_throughput(self):
        # Long window, many ON/OFF cycles: the MMPP's long-run average
        # must come out at the nominal rate despite 4x bursts.
        system, wl = make(BurstyWorkload, throughput=300.0, duration=4.0,
                          seed=2, on_fraction=0.25, cycle=0.1)
        wl.install()
        system.run(until=8.0, max_events=20_000_000)
        assert wl.sent == pytest.approx(300.0 * 4.0, rel=0.2)

    def test_bursts_exceed_average_rate(self):
        # Peak arrivals-per-cycle window must reach well above what a
        # steady source at the same average rate would put there.
        system, wl = make(BurstyWorkload, throughput=400.0, duration=2.0,
                          seed=5, on_fraction=0.2, cycle=0.1)
        wl.install()
        system.run(until=4.0, max_events=20_000_000)
        times = [e.time for e in system.trace.abroadcasts()]
        bucket = 0.02
        counts: dict[int, int] = {}
        for t in times:
            counts[int(t / bucket)] = counts.get(int(t / bucket), 0) + 1
        peak_rate = max(counts.values()) / bucket
        assert peak_rate > 2.0 * 400.0

    def test_on_fraction_one_degrades_to_steady_poisson(self):
        system, wl = make(BurstyWorkload, throughput=300.0, duration=1.0,
                          seed=4, on_fraction=1.0)
        wl.install()
        system.run(until=2.0, max_events=5_000_000)
        assert wl.sent == pytest.approx(300, rel=0.25)

    def test_sends_fall_inside_window(self):
        system, wl = make(BurstyWorkload, throughput=300.0, duration=0.5,
                          seed=6)
        wl.install()
        system.run(until=3.0, max_events=5_000_000)
        times = [e.time for e in system.trace.abroadcasts()]
        assert min(times) >= 0.0
        assert max(times) < 0.5

    def test_validation(self):
        system = build_system(StackSpec(n=3))
        with pytest.raises(ConfigurationError):
            BurstyWorkload(system, throughput=10, payload_size=1, duration=1,
                           on_fraction=0.0)
        with pytest.raises(ConfigurationError):
            BurstyWorkload(system, throughput=10, payload_size=1, duration=1,
                           on_fraction=1.5)
        with pytest.raises(ConfigurationError):
            BurstyWorkload(system, throughput=10, payload_size=1, duration=1,
                           cycle=0.0)


def _arrival_times(seed):
    """Top-level (picklable) worker: one seeded run's arrival times."""
    system, wl = make(throughput=300.0, duration=0.4, seed=seed)
    wl.install()
    system.run(until=2.0, max_events=3_000_000)
    return [e.time for e in system.trace.abroadcasts()]


def _spec(workload, seed=17):
    return ExperimentSpec(
        name=f"{workload}-s{seed}",
        stack=StackSpec(n=3, seed=seed),
        throughput=200.0,
        payload=16,
        duration=0.3,
        warmup=0.05,
        drain=1.0,
        workload=workload,
    )


class TestDeterminismAcrossWorkersAndCache:
    def test_identical_draws_in_pool_workers(self):
        seeds = [3, 3, 4]
        serial = [_arrival_times(s) for s in seeds]
        pooled = parallel_map(_arrival_times, seeds, processes=2)
        assert pooled == serial
        assert pooled[0] == pooled[1] != pooled[2]

    @pytest.mark.parametrize("workload", ["poisson", "bursty"])
    def test_suite_point_identical_serial_pooled_and_cached(
        self, workload, tmp_path
    ):
        specs = [_spec(workload), _spec(workload, seed=18)]
        serial = run_suite(specs, cache_dir=tmp_path / "a", processes=1)
        pooled = run_suite(specs, cache_dir=tmp_path / "b", processes=2)
        cached = run_suite(specs, cache_dir=tmp_path / "b", processes=2)
        assert (cached.cache_hits, cached.cache_misses) == (2, 0)
        for a, b, c in zip(serial.results, pooled.results, cached.results):
            assert a.sent == b.sent == c.sent > 0
            assert (
                a.metric("latency")["mean_ms"]
                == b.metric("latency")["mean_ms"]
                == c.metric("latency")["mean_ms"]
            )
            assert (
                a.metric("traffic")["frames_total"]
                == b.metric("traffic")["frames_total"]
                == c.metric("traffic")["frames_total"]
            )
