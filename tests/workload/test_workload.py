"""Tests for the symmetric workload generator."""

import pytest

from repro import StackSpec, SymmetricWorkload, build_system
from repro.core.exceptions import ConfigurationError


def make(throughput=300.0, duration=0.5, arrivals="poisson", seed=0, n=3):
    system = build_system(StackSpec(n=n, seed=seed))
    wl = SymmetricWorkload(
        system,
        throughput=throughput,
        payload_size=32,
        duration=duration,
        arrivals=arrivals,
    )
    return system, wl


class TestSymmetricWorkload:
    def test_offered_load_close_to_nominal(self):
        _, wl = make(throughput=400.0, duration=1.0)
        scheduled = wl.install()
        assert scheduled == pytest.approx(400, rel=0.25)

    def test_uniform_arrivals_are_exact(self):
        _, wl = make(throughput=300.0, duration=1.0, arrivals="uniform")
        assert wl.install() == 300

    def test_every_process_sends(self):
        system, wl = make(throughput=300.0, duration=0.4)
        wl.install()
        system.run(until=2.0, max_events=3_000_000)
        origins = {e.message.mid.origin for e in system.trace.abroadcasts()}
        assert origins == {1, 2, 3}

    def test_sends_fall_inside_window(self):
        system, wl = make(throughput=200.0, duration=0.3)
        wl.install()
        system.run(until=2.0, max_events=3_000_000)
        times = [e.time for e in system.trace.abroadcasts()]
        assert min(times) >= 0.0
        assert max(times) < 0.3

    def test_same_seed_same_arrivals(self):
        sys_a, wl_a = make(seed=7)
        sys_b, wl_b = make(seed=7)
        assert wl_a.install() == wl_b.install()
        sys_a.run(until=1.0, max_events=2_000_000)
        sys_b.run(until=1.0, max_events=2_000_000)
        times_a = [e.time for e in sys_a.trace.abroadcasts()]
        times_b = [e.time for e in sys_b.trace.abroadcasts()]
        assert times_a == times_b

    def test_sent_counter_tracks_actual_sends(self):
        system, wl = make(throughput=200.0, duration=0.2)
        scheduled = wl.install()
        system.run(until=1.0, max_events=2_000_000)
        assert wl.sent == scheduled

    def test_crashed_process_stops_sending(self):
        system, wl = make(throughput=300.0, duration=0.5)
        scheduled = wl.install()
        system.processes[1].crash()
        system.run(until=2.0, max_events=3_000_000)
        assert wl.sent < scheduled
        assert all(
            e.message.mid.origin != 1 for e in system.trace.abroadcasts()
        )

    def test_validation(self):
        system = build_system(StackSpec(n=3))
        with pytest.raises(ConfigurationError):
            SymmetricWorkload(system, throughput=0, payload_size=1, duration=1)
        with pytest.raises(ConfigurationError):
            SymmetricWorkload(system, throughput=10, payload_size=1, duration=0)
        with pytest.raises(ConfigurationError):
            SymmetricWorkload(
                system, throughput=10, payload_size=1, duration=1, arrivals="bursty"
            )

    def test_end_property(self):
        system = build_system(StackSpec(n=3))
        wl = SymmetricWorkload(
            system, throughput=10, payload_size=1, duration=2.0, start=1.0
        )
        assert wl.end == 3.0
