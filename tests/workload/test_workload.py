"""Tests for the workload generators."""

import pytest

from repro import (
    ClosedLoopWorkload,
    StackSpec,
    SymmetricWorkload,
    build_system,
)
from repro.core.exceptions import ConfigurationError
from repro.sim.rng import RngRegistry


def make(throughput=300.0, duration=0.5, arrivals="poisson", seed=0, n=3):
    system = build_system(StackSpec(n=n, seed=seed))
    wl = SymmetricWorkload(
        system,
        throughput=throughput,
        payload_size=32,
        duration=duration,
        arrivals=arrivals,
    )
    return system, wl


def eager_send_times(seed, n, throughput, duration, arrivals, start=0.0):
    """The pre-refactor eager scheduler, replayed draw for draw.

    ``SymmetricWorkload`` used to pre-schedule every send at install
    time with exactly this loop; the chained-timer implementation must
    produce identical times from the same streams.
    """
    rngs = RngRegistry(seed=seed)
    per_process_rate = throughput / n
    times: dict[int, list[float]] = {}
    for pid in range(1, n + 1):
        rng = rngs.stream(f"workload.p{pid}")
        times[pid] = []
        if arrivals == "poisson":
            t = start + rng.expovariate(per_process_rate)
            while t < start + duration:
                times[pid].append(t)
                t += rng.expovariate(per_process_rate)
        else:
            interval = 1.0 / per_process_rate
            t = start + rng.uniform(0.0, interval)
            while t < start + duration:
                times[pid].append(t)
                t += interval
    return times


class TestChainedTimersMatchEagerScheduling:
    @pytest.mark.parametrize("arrivals", ["poisson", "uniform"])
    def test_send_times_identical_to_eager_version(self, arrivals):
        system, wl = make(throughput=400.0, duration=0.6, arrivals=arrivals,
                          seed=21)
        wl.install()
        system.run(until=3.0, max_events=5_000_000)
        expected = eager_send_times(21, 3, 400.0, 0.6, arrivals)
        actual: dict[int, list[float]] = {pid: [] for pid in (1, 2, 3)}
        for event in system.trace.abroadcasts():
            actual[event.message.mid.origin].append(event.time)
        assert actual == expected
        assert wl.sent == sum(len(ts) for ts in expected.values())

    def test_heap_holds_one_timer_per_process_not_whole_run(self):
        system, wl = make(throughput=2000.0, duration=5.0)
        before = system.engine.pending()
        wl.install()
        # Eager scheduling would push ~10000 events here; chaining arms
        # one timer per process.
        assert system.engine.pending() - before == 3


class TestSymmetricWorkload:
    def test_offered_load_close_to_nominal(self):
        system, wl = make(throughput=400.0, duration=1.0)
        wl.install()
        system.run(until=1.0, max_events=3_000_000)
        assert wl.sent == pytest.approx(400, rel=0.25)

    def test_uniform_arrivals_are_exact(self):
        system, wl = make(throughput=300.0, duration=1.0, arrivals="uniform")
        wl.install()
        system.run(until=1.0, max_events=3_000_000)
        assert wl.sent == 300

    def test_install_arms_one_chain_per_process(self):
        _, wl = make(throughput=300.0, duration=1.0)
        assert wl.install() == 3

    def test_every_process_sends(self):
        system, wl = make(throughput=300.0, duration=0.4)
        wl.install()
        system.run(until=2.0, max_events=3_000_000)
        origins = {e.message.mid.origin for e in system.trace.abroadcasts()}
        assert origins == {1, 2, 3}

    def test_sends_fall_inside_window(self):
        system, wl = make(throughput=200.0, duration=0.3)
        wl.install()
        system.run(until=2.0, max_events=3_000_000)
        times = [e.time for e in system.trace.abroadcasts()]
        assert min(times) >= 0.0
        assert max(times) < 0.3

    def test_same_seed_same_arrivals(self):
        sys_a, wl_a = make(seed=7)
        sys_b, wl_b = make(seed=7)
        assert wl_a.install() == wl_b.install()
        sys_a.run(until=1.0, max_events=2_000_000)
        sys_b.run(until=1.0, max_events=2_000_000)
        times_a = [e.time for e in sys_a.trace.abroadcasts()]
        times_b = [e.time for e in sys_b.trace.abroadcasts()]
        assert times_a == times_b

    def test_sent_counter_tracks_actual_sends(self):
        system, wl = make(throughput=200.0, duration=0.2)
        wl.install()
        system.run(until=1.0, max_events=2_000_000)
        assert wl.sent == len(system.trace.abroadcasts())

    def test_crashed_process_stops_sending(self):
        system, wl = make(throughput=300.0, duration=0.5)
        wl.install()
        system.processes[1].crash()
        system.run(until=2.0, max_events=3_000_000)
        alive = eager_send_times(0, 3, 300.0, 0.5, "poisson")
        assert wl.sent == len(alive[2]) + len(alive[3])
        assert all(
            e.message.mid.origin != 1 for e in system.trace.abroadcasts()
        )

    def test_validation(self):
        system = build_system(StackSpec(n=3))
        with pytest.raises(ConfigurationError):
            SymmetricWorkload(system, throughput=0, payload_size=1, duration=1)
        with pytest.raises(ConfigurationError):
            SymmetricWorkload(system, throughput=10, payload_size=1, duration=0)
        with pytest.raises(ConfigurationError):
            SymmetricWorkload(
                system, throughput=10, payload_size=1, duration=1, arrivals="bursty"
            )

    def test_end_property(self):
        system = build_system(StackSpec(n=3))
        wl = SymmetricWorkload(
            system, throughput=10, payload_size=1, duration=2.0, start=1.0
        )
        assert wl.end == 3.0


class TestClosedLoopWorkload:
    def closed(self, throughput=200.0, duration=0.5, n=3, seed=0, **spec_kw):
        system = build_system(StackSpec(n=n, seed=seed, network="constant",
                                        **spec_kw))
        wl = ClosedLoopWorkload(
            system,
            throughput=throughput,
            payload_size=16,
            duration=duration,
        )
        return system, wl

    def test_each_client_has_at_most_one_outstanding_message(self):
        """A client never abroadcasts again before its own previous
        message was adelivered at its own process (checked on the
        trace)."""
        system, wl = self.closed()
        wl.install()
        system.run(until=2.0, max_events=3_000_000)
        for pid in (1, 2, 3):
            sends = [
                e.time for e in system.trace.abroadcasts()
                if e.message.mid.origin == pid
            ]
            own_deliveries = [
                e.time for e in system.trace.adeliveries(pid)
                if e.message.mid.origin == pid
            ]
            for i in range(1, len(sends)):
                assert own_deliveries[i - 1] <= sends[i], (
                    f"p{pid} sent #{i} before delivering #{i - 1}"
                )

    def test_all_sent_messages_deliver_and_check(self):
        from repro import check_abcast

        system, wl = self.closed()
        wl.install()
        system.run(until=3.0, max_events=3_000_000)
        assert wl.sent > 0
        check_abcast(system.trace, system.config)
        for pid in (1, 2, 3):
            assert len(system.trace.adelivery_sequence(pid)) == wl.sent

    def test_load_adapts_to_latency(self):
        """A slower stack receives fewer closed-loop sends in the same
        window — the defining closed-loop property."""
        fast_sys, fast = self.closed(constant_latency=1e-4, duration=0.4)
        slow_sys, slow = self.closed(constant_latency=2e-2, duration=0.4)
        fast.install()
        slow.install()
        fast_sys.run(until=2.0, max_events=3_000_000)
        slow_sys.run(until=2.0, max_events=3_000_000)
        assert slow.sent < fast.sent

    def test_crashed_client_stops(self):
        system, wl = self.closed()
        wl.install()
        system.processes[2].crash()
        system.run(until=2.0, max_events=3_000_000)
        assert all(
            e.message.mid.origin != 2 for e in system.trace.abroadcasts()
        )

    def test_registered_in_workload_registry(self):
        from repro.stack import layers

        assert "closed-loop" in layers.WORKLOADS
        assert "symmetric" in layers.WORKLOADS
        system, _ = self.closed()
        built = layers.WORKLOADS.get("closed-loop").factory(
            system, throughput=100.0, payload_size=8, duration=0.1,
            arrivals="poisson",
        )
        assert isinstance(built, ClosedLoopWorkload)

    def test_validation(self):
        system = build_system(StackSpec(n=3))
        with pytest.raises(ConfigurationError):
            ClosedLoopWorkload(system, throughput=0, payload_size=1, duration=1)
        with pytest.raises(ConfigurationError):
            ClosedLoopWorkload(
                system, throughput=10, payload_size=1, duration=1,
                arrivals="bursty",
            )
