"""Shared test fixtures: small fabrics and run helpers.

Tests that exercise a single protocol layer (broadcast, consensus) build
a *fabric* — engine, trace, processes, transports, oracle detectors —
and mount only the layer under test, instead of a full stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.identifiers import MessageId, ProcessId
from repro.core.message import AppMessage, make_payload
from repro.failure.detector import FalseSuspicion, OracleFailureDetector, wire_oracle_detectors
from repro.net.models import ConstantLatencyNetwork, ContentionNetwork, NetworkParams
from repro.net.setups import SETUP_1
from repro.net.topology import Topology
from repro.net.transport import Transport
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace


@dataclass
class Fabric:
    """A bare simulated network of ``n`` processes with oracle detectors."""

    config: SystemConfig
    engine: Engine
    trace: Trace
    network: ConstantLatencyNetwork | ContentionNetwork
    processes: dict[ProcessId, SimProcess]
    transports: dict[ProcessId, Transport]
    detectors: dict[ProcessId, OracleFailureDetector]
    rngs: RngRegistry = field(default_factory=RngRegistry)
    services: dict[ProcessId, object] = field(default_factory=dict)

    def run(self, until: float = 10.0, max_events: int = 2_000_000) -> float:
        return self.engine.run(until=until, max_events=max_events)

    def crash(self, pid: ProcessId, at: float) -> None:
        self.engine.schedule_at(at, self.processes[pid].crash)


def make_fabric(
    n: int,
    f: int | None = None,
    latency: float = 1e-3,
    seed: int = 0,
    detection_delay: float = 10e-3,
    network_kind: str = "constant",
    params: NetworkParams = SETUP_1,
    drop_in_flight: bool = False,
    faults: tuple = (),
    topology: Topology | None = None,
    false_suspicions: tuple[FalseSuspicion, ...] = (),
) -> Fabric:
    """Build a bare fabric (no protocol layers mounted)."""
    config = SystemConfig(n=n) if f is None else SystemConfig(n=n, f=f)
    engine = Engine()
    trace = Trace()
    rngs = RngRegistry(seed=seed)
    if network_kind == "constant":
        network: ConstantLatencyNetwork | ContentionNetwork = ConstantLatencyNetwork(
            engine,
            base=latency,
            drop_in_flight_of_crashed_sender=drop_in_flight,
            faults=faults,
            rngs=rngs,
            topology=topology,
        )
    else:
        network = ContentionNetwork(
            engine,
            params,
            drop_in_flight_of_crashed_sender=drop_in_flight,
            faults=faults,
            rngs=rngs,
            topology=topology,
        )
    processes = {pid: SimProcess(pid, engine, trace) for pid in config.processes}
    transports = {pid: Transport(processes[pid], network) for pid in config.processes}
    detectors = wire_oracle_detectors(
        processes, detection_delay=detection_delay, false_suspicions=false_suspicions
    )
    return Fabric(
        config=config,
        engine=engine,
        trace=trace,
        network=network,
        processes=processes,
        transports=transports,
        detectors=detectors,
        rngs=rngs,
    )


def trace_fingerprint(trace: Trace) -> str:
    """Canonical SHA-256 fingerprint of a full event trace.

    Every event is serialized to a text line containing its type, time
    (full float repr), process, and the identifiers/instance it names —
    deterministically ordered, so the digest is stable across interpreter
    runs and hash seeds.  Two runs with bit-identical protocol behaviour
    produce the same fingerprint; any divergence in timing, ordering, or
    content changes it.
    """
    import hashlib

    from repro.core.events import (
        ABroadcastEvent,
        ADeliverEvent,
        CrashEvent,
        DecideEvent,
        ProposeEvent,
        RBroadcastEvent,
        RDeliverEvent,
    )

    lines = []
    for event in trace.events:
        parts = [type(event).__name__, repr(event.time), str(event.process)]
        if isinstance(event, (ABroadcastEvent, ADeliverEvent,
                              RBroadcastEvent, RDeliverEvent)):
            mid = event.message.mid
            parts += [f"m{mid.origin}.{mid.seq}", str(event.message.payload.size)]
        elif isinstance(event, (ProposeEvent, DecideEvent)):
            ids = ",".join(f"m{i.origin}.{i.seq}" for i in sorted(event.value))
            parts += [str(event.instance), ids]
        elif isinstance(event, CrashEvent):
            pass
        lines.append(" ".join(parts))
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


_mid_counter = [0]


def fresh_mid(origin: int = 1) -> MessageId:
    """A unique message id for value-level consensus tests."""
    _mid_counter[0] += 1
    return MessageId(origin=origin, seq=_mid_counter[0])


def app_message(origin: int = 1, seq: int | None = None, size: int = 10) -> AppMessage:
    """A small application message for broadcast-layer tests."""
    mid = fresh_mid(origin) if seq is None else MessageId(origin, seq)
    return AppMessage(mid=mid, sender=origin, payload=make_payload(size))
