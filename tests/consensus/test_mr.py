"""Behavioural tests for Mostefaoui-Raynal consensus (original and indirect)."""

import pytest

from repro.checkers.consensus import ConsensusChecker
from repro.consensus.base import ID_SET_CODEC
from repro.consensus.mostefaoui_raynal import BOTTOM, Bottom, MostefaouiRaynalConsensus
from repro.consensus.mr_indirect import MRIndirectConsensus
from repro.core.config import SystemConfig
from repro.core.events import RDeliverEvent
from repro.core.exceptions import ProtocolViolationError, ResilienceExceededError
from repro.core.identifiers import MessageId
from repro.core.rcv import ReceivedStore
from tests.helpers import Fabric, app_message, make_fabric


def mount(fabric: Fabric, cls, enforce=True):
    services, stores, decisions = {}, {}, {}
    for pid in fabric.config.processes:
        services[pid] = cls(
            fabric.transports[pid],
            fabric.config,
            fabric.detectors[pid],
            ID_SET_CODEC,
            enforce_resilience=enforce,
        )
        stores[pid] = ReceivedStore()
        decisions[pid] = {}
        services[pid].on_decide(
            lambda k, v, _pid=pid: decisions[_pid].setdefault(k, v)
        )
    fabric.services = services
    return services, stores, decisions


def give(fabric: Fabric, stores, pid: int, message) -> None:
    stores[pid].add(message)
    fabric.trace.record(
        RDeliverEvent(time=fabric.engine.now, process=pid, message=message)
    )


def ids(*messages):
    return frozenset(m.mid for m in messages)


class TestBottomSentinel:
    def test_singleton(self):
        assert Bottom() is BOTTOM
        assert repr(BOTTOM) == "⊥"


class TestOriginalMR:
    def test_unanimous_decides_in_one_round(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in (1, 2, 3):
            services[pid].propose(1, value)
        fabric.run()
        assert all(decisions[pid][1] == value for pid in (1, 2, 3))
        assert services[1]._instances[1].rounds_executed == 1
        ConsensusChecker(fabric.trace, fabric.config).check_all()

    def test_two_step_decision_in_good_round(self):
        """Without failures MR decides within two communication steps:
        coordinator's estimate (1 hop) + echoes (1 hop)."""
        fabric = make_fabric(3, latency=1e-3)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in (1, 2, 3):
            services[pid].propose(1, value)
        first = None
        services[1].on_decide(lambda k, v: None)
        fabric.run()
        first = fabric.trace.first_decision(1)
        # 2 steps of 1 ms each, plus the decide flood hop.
        assert first.time <= 3.1e-3

    def test_distinct_proposals_decide_coordinator_value(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        values = {pid: frozenset({MessageId(pid, 1)}) for pid in (1, 2, 3)}
        for pid in (1, 2, 3):
            services[pid].propose(1, values[pid])
        fabric.run()
        assert decisions[1][1] == values[2]  # round-1 coordinator is p2
        ConsensusChecker(fabric.trace, fabric.config).check_all()

    def test_coordinator_crash_rotates_rounds(self):
        fabric = make_fabric(3, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        fabric.processes[2].crash()
        value = frozenset({MessageId(1, 1)})
        services[1].propose(1, value)
        services[3].propose(1, value)
        fabric.run()
        assert decisions[1][1] == value
        assert decisions[3][1] == value
        ConsensusChecker(fabric.trace, fabric.config).check_all()

    def test_non_proposer_learns_via_flood(self):
        fabric = make_fabric(5)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in (1, 2, 3, 4):
            services[pid].propose(1, value)
        fabric.run()
        assert decisions[5][1] == value

    def test_resilience_bound_is_minority(self):
        assert MostefaouiRaynalConsensus.resilience_bound(SystemConfig(5)) == 2
        assert MostefaouiRaynalConsensus.resilience_bound(SystemConfig(3)) == 1


class TestIndirectMR:
    def test_resilience_bound_drops_to_a_third(self):
        """The paper's headline negative result."""
        assert MRIndirectConsensus.resilience_bound(SystemConfig(3)) == 0
        assert MRIndirectConsensus.resilience_bound(SystemConfig(4)) == 1
        assert MRIndirectConsensus.resilience_bound(SystemConfig(7)) == 2

    def test_construction_rejects_f_at_or_above_n_third(self):
        fabric = make_fabric(3, f=1)
        with pytest.raises(ResilienceExceededError):
            MRIndirectConsensus(
                fabric.transports[1],
                fabric.config,
                fabric.detectors[1],
                ID_SET_CODEC,
            )

    def test_unanimous_with_messages_decides_fast(self):
        fabric = make_fabric(4, f=1)
        services, stores, decisions = mount(fabric, MRIndirectConsensus)
        m = app_message(1)
        for pid in fabric.config.processes:
            give(fabric, stores, pid, m)
            services[pid].propose(1, ids(m), stores[pid].rcv)
        fabric.run()
        for pid in fabric.config.processes:
            assert decisions[pid][1] == ids(m)
        ConsensusChecker(fabric.trace, fabric.config).check_all(
            no_loss=True, v_stability=True
        )

    def test_unbacked_coordinator_value_is_echoed_as_bottom(self):
        """Phase-1 filter: the coordinator's value is replaced by ⊥ when
        msgs(v) are missing, so an unstable value cannot win the round."""
        fabric = make_fabric(4, f=1)
        services, stores, decisions = mount(fabric, MRIndirectConsensus)
        a = app_message(2)  # only p2 will hold msgs({a})
        b = app_message(1)
        give(fabric, stores, 2, a)
        for pid in (1, 2, 3, 4):
            give(fabric, stores, pid, b)
        services[2].propose(1, ids(a), stores[2].rcv)
        for pid in (1, 3, 4):
            services[pid].propose(1, ids(b), stores[pid].rcv)
        fabric.run()
        decided = decisions[1][1]
        assert decided == ids(b)
        ConsensusChecker(fabric.trace, fabric.config).check_all(
            no_loss=True, v_stability=True
        )

    def test_count_based_adoption_spreads_backed_values(self):
        """Condition (2) of Algorithm 3 line 28: a process lacking
        msgs(v) still adopts v when ⌈(n+1)/3⌉ processes echoed it —
        f+1-deep evidence that a correct holder exists."""
        fabric = make_fabric(4, f=1, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, MRIndirectConsensus)
        m = app_message(2)
        # p2 (coordinator), p3, p4 hold msgs({m}); p1 does not.
        for pid in (2, 3, 4):
            give(fabric, stores, pid, m)
        services[2].propose(1, ids(m), stores[2].rcv)
        services[3].propose(1, ids(m), stores[3].rcv)
        services[4].propose(1, ids(m), stores[4].rcv)
        services[1].propose(1, frozenset(), stores[1].rcv)
        fabric.run()
        # p1 decides m's id without ever holding m.
        assert decisions[1][1] == ids(m)
        ConsensusChecker(fabric.trace, fabric.config).check_all(
            no_loss=True, v_stability=True
        )

    def test_survives_one_crash_at_n4(self):
        fabric = make_fabric(4, f=1, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, MRIndirectConsensus)
        m = app_message(1)
        for pid in fabric.config.processes:
            give(fabric, stores, pid, m)
            services[pid].propose(1, ids(m), stores[pid].rcv)
        fabric.crash(2, at=0.5e-3)
        fabric.run()
        for pid in (1, 3, 4):
            assert decisions[pid][1] == ids(m)
        ConsensusChecker(fabric.trace, fabric.config).check_all(
            no_loss=True, v_stability=True
        )

    def test_original_mr_violates_v_stability_where_indirect_does_not(self):
        """Section 3.3.2's conclusion, executed: the original algorithm
        reaches a v-valent configuration backed by a single process."""
        fabric = make_fabric(4, f=1)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        a = app_message(2)
        give(fabric, stores, 2, a)  # only the coordinator holds msgs({a})
        services[2].propose(1, ids(a))
        for pid in (1, 3, 4):
            services[pid].propose(1, frozenset())
        fabric.run()
        assert decisions[1][1] == ids(a)
        checker = ConsensusChecker(fabric.trace, fabric.config)
        with pytest.raises(ProtocolViolationError, match="v-stability"):
            checker.check_v_stability(1)
