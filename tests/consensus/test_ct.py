"""Behavioural tests for Chandra-Toueg consensus (original and indirect)."""

import pytest

from repro.checkers.consensus import ConsensusChecker
from repro.consensus.base import ID_SET_CODEC
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.consensus.ct_indirect import CTIndirectConsensus
from repro.core.events import RDeliverEvent
from repro.core.exceptions import ResilienceExceededError
from repro.core.identifiers import MessageId
from repro.core.rcv import ReceivedStore
from repro.failure.detector import FalseSuspicion
from tests.helpers import Fabric, app_message, make_fabric


def mount(fabric: Fabric, cls, enforce=True):
    """Mount a consensus service + received store on every process."""
    services, stores, decisions = {}, {}, {}
    for pid in fabric.config.processes:
        services[pid] = cls(
            fabric.transports[pid],
            fabric.config,
            fabric.detectors[pid],
            ID_SET_CODEC,
            enforce_resilience=enforce,
        )
        stores[pid] = ReceivedStore()
        decisions[pid] = {}
        services[pid].on_decide(
            lambda k, v, _pid=pid: decisions[_pid].setdefault(k, v)
        )
    fabric.services = services
    return services, stores, decisions


def give(fabric: Fabric, stores, pid: int, message) -> None:
    """Hand ``message`` to ``pid`` (store + trace, as an rdelivery)."""
    stores[pid].add(message)
    fabric.trace.record(
        RDeliverEvent(time=fabric.engine.now, process=pid, message=message)
    )


def ids(*messages):
    return frozenset(m.mid for m in messages)


class TestOriginalCT:
    def test_unanimous_proposal_decides_that_value(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in (1, 2, 3):
            services[pid].propose(1, value)
        fabric.run()
        assert all(decisions[pid][1] == value for pid in (1, 2, 3))
        ConsensusChecker(fabric.trace, fabric.config).check_all()

    def test_round1_decides_coordinator_proposal(self):
        """With distinct proposals, round 1 decides the coordinator's
        (p2's) initial estimate."""
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        values = {pid: frozenset({MessageId(pid, 1)}) for pid in (1, 2, 3)}
        for pid in (1, 2, 3):
            services[pid].propose(1, values[pid])
        fabric.run()
        assert decisions[1][1] == values[2]
        ConsensusChecker(fabric.trace, fabric.config).check_all()

    def test_non_proposer_learns_decision_from_flood(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        value = frozenset({MessageId(1, 1)})
        services[1].propose(1, value)
        services[2].propose(1, value)
        # p3 never proposes but must still decide (decide is R-broadcast).
        fabric.run()
        assert decisions[3][1] == value

    def test_coordinator_crash_before_proposal(self):
        fabric = make_fabric(3, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        fabric.processes[2].crash()  # round-1 coordinator is dead from the start
        value = frozenset({MessageId(1, 1)})
        services[1].propose(1, value)
        services[3].propose(1, value)
        fabric.run()
        assert decisions[1][1] == value
        assert decisions[3][1] == value
        # The decision needed more than one round.
        instance = services[1]._instances[1]
        assert instance.rounds_executed >= 2

    def test_coordinator_crash_after_proposal_still_agrees(self):
        fabric = make_fabric(5, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in fabric.config.processes:
            services[pid].propose(1, value)
        fabric.crash(2, at=1.5e-3)  # mid-round
        fabric.run()
        survivors = [p for p in fabric.config.processes if p != 2]
        assert all(decisions[pid].get(1) == value for pid in survivors)
        ConsensusChecker(fabric.trace, fabric.config).check_all()

    def test_false_suspicion_delays_but_does_not_break(self):
        everyone_suspects_c = tuple(
            FalseSuspicion(observer=p, target=2, start=0.0005, end=0.05)
            for p in (1, 3)
        )
        fabric = make_fabric(3, false_suspicions=everyone_suspects_c)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in (1, 2, 3):
            services[pid].propose(1, value)
        fabric.run()
        assert all(decisions[pid][1] == value for pid in (1, 2, 3))
        ConsensusChecker(fabric.trace, fabric.config).check_all()

    def test_concurrent_instances_are_independent(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        v1 = frozenset({MessageId(1, 1)})
        v2 = frozenset({MessageId(2, 2)})
        for pid in (1, 2, 3):
            services[pid].propose(1, v1)
            services[pid].propose(2, v2)
        fabric.run()
        for pid in (1, 2, 3):
            assert decisions[pid][1] == v1
            assert decisions[pid][2] == v2

    def test_double_propose_rejected(self):
        from repro.core.exceptions import ConfigurationError
        fabric = make_fabric(3)
        services, _, _ = mount(fabric, ChandraTouegConsensus)
        services[1].propose(1, frozenset({MessageId(1, 1)}))
        with pytest.raises(ConfigurationError):
            services[1].propose(1, frozenset({MessageId(1, 2)}))

    def test_resilience_bound(self):
        from repro.core.config import SystemConfig
        assert ChandraTouegConsensus.resilience_bound(SystemConfig(3)) == 1
        assert ChandraTouegConsensus.resilience_bound(SystemConfig(5)) == 2
        assert ChandraTouegConsensus.resilience_bound(SystemConfig(6)) == 2


class TestIndirectCT:
    def test_missing_messages_force_refusal_and_another_value_wins(self):
        """The acceptance gate at work: the coordinator's value is backed
        only at the coordinator, so it is nacked and a value held by a
        majority is decided instead — v-valence implies v-stability."""
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, CTIndirectConsensus)
        a, b = app_message(2), app_message(1)
        give(fabric, stores, 2, a)  # only p2 holds msgs({a})
        for pid in (1, 2, 3):
            give(fabric, stores, pid, b)
        services[2].propose(1, ids(a), stores[2].rcv)
        services[1].propose(1, ids(b), stores[1].rcv)
        services[3].propose(1, ids(b), stores[3].rcv)
        fabric.run()
        assert decisions[1][1] == ids(b)
        checker = ConsensusChecker(fabric.trace, fabric.config)
        checker.check_all(no_loss=True, v_stability=True)

    def test_original_ct_decides_unstable_value_in_same_scenario(self):
        """Contrast: the unmodified algorithm happily decides {a} even
        though only one process holds msgs({a}) — exactly the
        configuration the paper calls v-valent but not v-stable."""
        from repro.core.exceptions import ProtocolViolationError
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        a, b = app_message(2), app_message(1)
        give(fabric, stores, 2, a)
        for pid in (1, 2, 3):
            give(fabric, stores, pid, b)
        services[2].propose(1, ids(a))
        services[1].propose(1, ids(b))
        services[3].propose(1, ids(b))
        fabric.run()
        assert decisions[1][1] == ids(a)  # blind adoption
        checker = ConsensusChecker(fabric.trace, fabric.config)
        with pytest.raises(ProtocolViolationError, match="v-stability"):
            checker.check_v_stability(1)

    def test_acceptance_unblocks_once_messages_arrive(self):
        """Hypothesis A in action: p1/p3 receive msgs({a}) while rounds
        churn; consensus then converges on a proposal."""
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, CTIndirectConsensus)
        a = app_message(2)
        give(fabric, stores, 2, a)
        services[2].propose(1, ids(a), stores[2].rcv)
        services[1].propose(1, frozenset(), stores[1].rcv)
        services[3].propose(1, frozenset(), stores[3].rcv)
        # msgs({a}) arrive at the others shortly after.
        fabric.engine.schedule(5e-3, lambda: give(fabric, stores, 1, a))
        fabric.engine.schedule(5e-3, lambda: give(fabric, stores, 3, a))
        fabric.run()
        assert 1 in decisions[1]
        ConsensusChecker(fabric.trace, fabric.config).check_all(
            no_loss=True, v_stability=True
        )

    def test_empty_value_is_trivially_stable(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, CTIndirectConsensus)
        for pid in (1, 2, 3):
            services[pid].propose(1, frozenset(), stores[pid].rcv)
        fabric.run()
        assert decisions[1][1] == frozenset()

    def test_propose_without_rcv_rejected(self):
        from repro.core.exceptions import ConfigurationError
        fabric = make_fabric(3)
        services, _, _ = mount(fabric, CTIndirectConsensus)
        with pytest.raises(ConfigurationError):
            services[1].propose(1, frozenset({MessageId(1, 1)}), None)

    def test_crash_tolerance_same_as_original(self):
        """Resilience is NOT reduced by the CT adaptation: f = 2 at n = 5."""
        fabric = make_fabric(5, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, CTIndirectConsensus)
        m = app_message(1)
        for pid in fabric.config.processes:
            give(fabric, stores, pid, m)
            services[pid].propose(1, ids(m), stores[pid].rcv)
        fabric.crash(2, at=1e-3)
        fabric.crash(3, at=2e-3)
        fabric.run()
        for pid in (1, 4, 5):
            assert decisions[pid][1] == ids(m)
        ConsensusChecker(fabric.trace, fabric.config).check_all(
            no_loss=True, v_stability=True
        )
