"""Fine-grained tests of the CT round machinery.

These pin the mechanics the proofs lean on: timestamp bookkeeping,
coordinator estimate selection, nack-driven round aborts, buffering of
early frames, decide-flood forwarding, and the estimate_c/estimate_p
separation of the indirect adaptation.
"""

import pytest

from repro.consensus.base import ID_SET_CODEC
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.consensus.ct_indirect import CTIndirectConsensus
from repro.core.events import RDeliverEvent
from repro.core.identifiers import MessageId
from repro.net.faults import DelayRule
from repro.core.rcv import ReceivedStore
from tests.helpers import Fabric, app_message, make_fabric


def mount(fabric: Fabric, cls, **kwargs):
    services, stores, decisions = {}, {}, {}
    for pid in fabric.config.processes:
        services[pid] = cls(
            fabric.transports[pid],
            fabric.config,
            fabric.detectors[pid],
            ID_SET_CODEC,
            **kwargs,
        )
        stores[pid] = ReceivedStore()
        decisions[pid] = {}
        services[pid].on_decide(
            lambda k, v, _pid=pid: decisions[_pid].setdefault(k, v)
        )
    return services, stores, decisions


def give(fabric, stores, pid, message):
    stores[pid].add(message)
    fabric.trace.record(
        RDeliverEvent(time=fabric.engine.now, process=pid, message=message)
    )


def ids(*messages):
    return frozenset(m.mid for m in messages)


class TestTimestampSelection:
    def test_highest_timestamp_estimate_wins_later_rounds(self):
        """A value adopted in round 1 (ts=1) must beat fresh ts=0
        estimates at the round-2 coordinator."""
        fabric = make_fabric(3, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        v2 = frozenset({MessageId(2, 1)})
        v_other = frozenset({MessageId(9, 9)})
        # Round 1 coordinator p2 proposes v2; everyone adopts (ts=1).
        # p2 then crashes before deciding; round 2 must still pick v2.
        services[1].propose(1, v_other)
        services[2].propose(1, v2)
        services[3].propose(1, v_other)
        # Crash p2 right after its proposal went out but before it can
        # gather acks (ack needs a network round trip >= 2ms).
        fabric.crash(2, at=2.5e-3)
        fabric.run()
        decided = decisions[1].get(1) or decisions[3].get(1)
        assert decided is not None
        # If p1/p3 adopted v2 in round 1, ts rules force v2 later; if the
        # crash beat the proposal, a ts=0 value wins.  Either way both
        # survivors agree:
        assert decisions[1].get(1) == decisions[3].get(1)

    def test_tie_break_is_deterministic_min_pid(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        # All ts equal 0 in round 1; coordinator proposes own estimate.
        # Force round 2 by making p2 crash pre-propose; coordinator p3
        # then selects among ts=0 estimates -> min pid (p1) wins.
        fabric.processes[2].crash()
        va = frozenset({MessageId(1, 1)})
        vb = frozenset({MessageId(3, 1)})
        services[1].propose(1, va)
        services[3].propose(1, vb)
        fabric.run()
        assert decisions[1][1] == va
        assert decisions[3][1] == va


class TestRoundAborts:
    def test_single_nack_aborts_the_round(self):
        """Indirect CT: one process missing msgs(v) nacks; the
        coordinator abandons the round even though a majority acked."""
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, CTIndirectConsensus)
        a = app_message(2)
        give(fabric, stores, 2, a)  # p1 and p3 lack msgs({a})
        b = app_message(1)
        for pid in (1, 2, 3):
            give(fabric, stores, pid, b)
        services[2].propose(1, ids(a), stores[2].rcv)
        services[1].propose(1, ids(b), stores[1].rcv)
        services[3].propose(1, ids(b), stores[3].rcv)
        fabric.run()
        inst = services[2]._instances[1]
        assert inst.rounds_executed >= 2  # round 1 aborted on nacks
        assert decisions[2][1] == ids(b)

    def test_nacks_recorded_per_round(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, CTIndirectConsensus)
        a = app_message(2)
        give(fabric, stores, 2, a)
        for pid in (1, 2, 3):
            services[pid].propose(
                1, ids(a) if pid == 2 else frozenset(), stores[pid].rcv
            )
        fabric.run()
        inst = services[2]._instances[1]
        assert 1 in inst.nacks and len(inst.nacks[1]) >= 1


class TestBuffering:
    def test_frames_for_unproposed_instance_are_buffered(self):
        """p3 receives a proposal for an instance it hasn't started; it
        must not ack until its own propose, then proceed normally."""
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        value = frozenset({MessageId(1, 1)})
        services[1].propose(1, value)
        services[2].propose(1, value)
        # p3 proposes late, after the coordinator's proposal reached it.
        fabric.engine.schedule(20e-3, services[3].propose, 1, value)
        fabric.run()
        assert decisions[3][1] == value

    def test_stale_round_proposals_ignored(self):
        """A proposal for an old round must not overwrite the estimate a
        process carried into later rounds."""
        fabric = make_fabric(3, detection_delay=2e-3,
                             faults=(DelayRule(kind_prefix="ct.prop",
                                               delay=30e-3),
                                     DelayRule(delay=1e-3)))
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in (1, 2, 3):
            services[pid].propose(1, value)
        # p2's round-1 proposal is delayed 30ms; FD suspicion is NOT
        # triggered (p2 is alive), so everyone simply waits; eventually
        # the proposal lands and the instance completes in round 1.
        fabric.run()
        assert decisions[1][1] == value


class TestDecideFlood:
    def test_decide_forwarded_exactly_once_per_process(self):
        fabric = make_fabric(4)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in fabric.config.processes:
            services[pid].propose(1, value)
        fabric.run()
        # Coordinator sends n decide frames; each of the other n-1
        # processes forwards n-1: n + (n-1)(n-1) = 4 + 9 = 13... but the
        # coordinator also forwards on first self-receipt (n-1 more).
        total = fabric.network.frames_sent.get("ct.decide", 0)
        n = 4
        assert total == n + n * (n - 1)

    def test_late_decide_for_stopped_instance_is_harmless(self):
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, ChandraTouegConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in (1, 2, 3):
            services[pid].propose(1, value)
        fabric.run()
        # Decisions arrived everywhere exactly once despite n+n(n-1)
        # decide frames in flight.
        for pid in (1, 2, 3):
            assert list(decisions[pid]) == [1]


class TestEstimateSeparation:
    def test_coordinator_does_not_adopt_unbacked_selection(self):
        """Algorithm 2's estimate_c vs estimate_p: the round-2
        coordinator relays the highest-ts estimate but keeps its own
        estimate unless rcv passes."""
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, CTIndirectConsensus)
        a = app_message(2)
        give(fabric, stores, 2, a)  # only p2 holds msgs({a})
        b = app_message(3)
        for pid in (1, 2, 3):
            give(fabric, stores, pid, b)
        services[2].propose(1, ids(a), stores[2].rcv)
        services[1].propose(1, ids(b), stores[1].rcv)
        services[3].propose(1, ids(b), stores[3].rcv)
        fabric.run()
        # p3 coordinates round 2.  Whatever it relayed, its own estimate
        # must never have become {a} (it lacks msgs({a})).
        inst3 = services[3]._instances[1]
        assert inst3.estimate != ids(a)
        assert decisions[3][1] == ids(b)
