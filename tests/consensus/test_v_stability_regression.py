"""Regression: a holder crashing between its ack and the decision.

Pinned from the Hypothesis falsifying example that
``test_indirect_ct_no_loss_under_adversity`` kept replaying out of the
container-local ``.hypothesis`` database::

    s = (3, {1: {1}, 2: {1, 2}, 3: {3}}, [1], [0.00390625], ())

Timeline (constant 1 ms links, oracle FD with 3 ms detection):

* round-1 coordinator p2 proposes its own estimate ``{m1, m2}``; p1 and
  p3 nack it through the rcv gate (neither holds ``m2``), so round 2
  rotates to p3;
* p3 reaches its estimate quorum with ``{m1}`` (from p1) and its own
  ``{m3}`` before p2's higher-timestamp estimate arrives, proposes
  ``{m1}``;
* p1 and p2 both hold ``m1``: they pass the rcv gate and ack at t=3 ms;
* p1 crashes at t=3.90625 ms — *after* acking, *before* the decide
  frames land at t=5 ms.

Algorithm 2 behaved exactly per the paper: every acker held ``msgs(v)``
when it acked, and with at most ``f`` crashes in the whole run one of
the ``f + 1`` holders (p2) is correct — No loss holds.  The original
checker nevertheless flagged v-stability because it demanded ``f + 1``
holders *alive at decision time*, excluding p1 and thereby counting its
crash twice (once against the holder set, once against the ``f``
budget).  No protocol can keep a holder alive after it legitimately
crashes, so the checker was wrong, not the algorithm; v-stability now
counts distinct processes that had received ``msgs(v)`` by the decision
time (``Trace.holders_at(..., include_crashed=True)``).

This test replays the exact scenario deterministically — no Hypothesis
database involved — and asserts both the fixed verdict and the shape
that made the old interpretation fire.
"""

from repro.checkers.consensus import ConsensusChecker
from repro.consensus.base import ID_SET_CODEC
from repro.consensus.ct_indirect import CTIndirectConsensus
from repro.core.events import RDeliverEvent
from repro.core.identifiers import MessageId
from repro.core.message import AppMessage, make_payload
from repro.core.rcv import ReceivedStore
from tests.helpers import make_fabric

HOLDERS_MAP = {1: {1}, 2: {1, 2}, 3: {3}}
CRASH_PID, CRASH_AT = 1, 0.00390625


def run_pinned_scenario():
    fabric = make_fabric(3, f=1, detection_delay=3e-3)
    services, stores, decisions = {}, {}, {}
    for pid in fabric.config.processes:
        services[pid] = CTIndirectConsensus(
            fabric.transports[pid],
            fabric.config,
            fabric.detectors[pid],
            ID_SET_CODEC,
        )
        stores[pid] = ReceivedStore()
        decisions[pid] = {}
        services[pid].on_decide(
            lambda k, v, _pid=pid: decisions[_pid].setdefault(k, v)
        )
    messages = {
        origin: AppMessage(
            mid=MessageId(origin, 1), sender=origin, payload=make_payload(4)
        )
        for origin in fabric.config.processes
    }
    for pid in fabric.config.processes:
        held = [messages[o] for o in HOLDERS_MAP[pid]]
        for m in held:
            stores[pid].add(m)
            fabric.trace.record(RDeliverEvent(time=0.0, process=pid, message=m))
        services[pid].propose(
            1, frozenset(m.mid for m in held), stores[pid].rcv
        )
    fabric.crash(CRASH_PID, at=CRASH_AT)
    fabric.run(until=5.0, max_events=3_000_000)
    return fabric, decisions


def test_all_properties_hold_including_v_stability():
    fabric, decisions = run_pinned_scenario()
    assert decisions[2], "the scenario must reach a decision"
    ConsensusChecker(fabric.trace, fabric.config).check_all(
        no_loss=True, v_stability=True
    )


def test_scenario_still_exercises_the_crash_between_ack_and_decide():
    """Guard the regression's shape: the decided value's holder set must
    genuinely lose a member to a crash before the first decision, and
    still retain one correct holder (the No loss obligation)."""
    fabric, _ = run_pinned_scenario()
    first = fabric.trace.first_decision(1)
    assert first is not None
    live = fabric.trace.holders_at(first.value, first.time)
    ever = fabric.trace.holders_at(first.value, first.time, include_crashed=True)
    # The old live-holder interpretation saw fewer than f + 1 holders...
    assert len(live) < fabric.config.stability_threshold()
    # ...because an acker crashed after receiving msgs(v), not because
    # the decision was unbacked: counting every receiver restores f + 1,
    assert len(ever) >= fabric.config.stability_threshold()
    assert CRASH_PID in ever - live
    # ...and a correct holder survives, which is what No loss promises.
    assert live & fabric.trace.correct_processes(fabric.config.processes)
