"""Property-based tests: consensus safety under randomized adversity.

Hypothesis drives randomized scenarios — group size, which processes
hold which messages, crash times within the resilience bound, false
suspicions — and the trace checkers assert the full property set of the
paper after every run.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkers.consensus import ConsensusChecker
from repro.consensus.base import ID_SET_CODEC
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.consensus.ct_indirect import CTIndirectConsensus
from repro.consensus.mostefaoui_raynal import MostefaouiRaynalConsensus
from repro.consensus.mr_indirect import MRIndirectConsensus
from repro.core.events import RDeliverEvent
from repro.core.identifiers import MessageId
from repro.core.message import AppMessage, make_payload
from repro.core.rcv import ReceivedStore
from repro.failure.detector import FalseSuspicion
from tests.helpers import make_fabric

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_consensus(cls, n, holders_map, crash_pids, crash_times, suspicions):
    """Drive one consensus instance; return (fabric, decisions)."""
    f_bound = cls.resilience_bound(
        __import__("repro.core.config", fromlist=["SystemConfig"]).SystemConfig(n=n)
    )
    fabric = make_fabric(
        n,
        f=f_bound,
        detection_delay=3e-3,
        false_suspicions=suspicions,
    )
    services, stores, decisions = {}, {}, {}
    for pid in fabric.config.processes:
        services[pid] = cls(
            fabric.transports[pid],
            fabric.config,
            fabric.detectors[pid],
            ID_SET_CODEC,
        )
        stores[pid] = ReceivedStore()
        decisions[pid] = {}
        services[pid].on_decide(
            lambda k, v, _pid=pid: decisions[_pid].setdefault(k, v)
        )
    messages = {
        origin: AppMessage(
            mid=MessageId(origin, 1), sender=origin, payload=make_payload(4)
        )
        for origin in fabric.config.processes
    }
    indirect = cls.REQUIRES_RCV
    for pid in fabric.config.processes:
        held = [messages[o] for o in holders_map.get(pid, ())]
        for m in held:
            stores[pid].add(m)
            fabric.trace.record(
                RDeliverEvent(time=0.0, process=pid, message=m)
            )
        value = frozenset(m.mid for m in held)
        rcv = stores[pid].rcv if indirect else None
        services[pid].propose(1, value, rcv)
    for pid, at in zip(crash_pids, crash_times):
        fabric.crash(pid, at=at)
    fabric.run(until=5.0, max_events=3_000_000)
    return fabric, decisions


@st.composite
def scenario(draw, max_f):
    n = draw(st.integers(min_value=3, max_value=6))
    # Which messages each process initially holds: every process holds
    # its own message plus a random subset of the others'.
    holders_map = {}
    for pid in range(1, n + 1):
        extra = draw(st.sets(st.integers(1, n), max_size=n))
        holders_map[pid] = {pid} | extra
    f = max_f(n)
    crash_count = draw(st.integers(0, f))
    crash_pids = draw(
        st.lists(
            st.integers(1, n),
            min_size=crash_count,
            max_size=crash_count,
            unique=True,
        )
    )
    crash_times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.02),
            min_size=crash_count,
            max_size=crash_count,
        )
    )
    n_susp = draw(st.integers(0, 2))
    suspicions = []
    for _ in range(n_susp):
        observer = draw(st.integers(1, n))
        target = draw(st.integers(1, n).filter(lambda t: t != observer))
        start = draw(st.floats(min_value=0.0, max_value=0.01))
        suspicions.append(
            FalseSuspicion(observer=observer, target=target,
                           start=start, end=start + 0.005)
        )
    return n, holders_map, crash_pids, crash_times, tuple(suspicions)


@SLOW
@given(scenario(max_f=lambda n: (n - 1) // 2))
def test_original_ct_safety_and_termination(s):
    n, holders, crash_pids, crash_times, susp = s
    fabric, decisions = run_consensus(
        ChandraTouegConsensus, n, holders, crash_pids, crash_times, susp
    )
    ConsensusChecker(fabric.trace, fabric.config).check_all()


@SLOW
@given(scenario(max_f=lambda n: (n - 1) // 2))
def test_indirect_ct_no_loss_under_adversity(s):
    """The paper's Algorithm 2: ALL properties, including No loss and
    v-stability, hold under any within-bound crash/suspicion pattern."""
    n, holders, crash_pids, crash_times, susp = s
    fabric, decisions = run_consensus(
        CTIndirectConsensus, n, holders, crash_pids, crash_times, susp
    )
    ConsensusChecker(fabric.trace, fabric.config).check_all(
        no_loss=True, v_stability=True
    )


@SLOW
@given(scenario(max_f=lambda n: (n - 1) // 2))
def test_original_mr_safety_and_termination(s):
    n, holders, crash_pids, crash_times, susp = s
    fabric, decisions = run_consensus(
        MostefaouiRaynalConsensus, n, holders, crash_pids, crash_times, susp
    )
    ConsensusChecker(fabric.trace, fabric.config).check_all()


@SLOW
@given(scenario(max_f=lambda n: (n - 1) // 3))
def test_indirect_mr_no_loss_under_adversity(s):
    """The paper's Algorithm 3 under its reduced bound f < n/3."""
    n, holders, crash_pids, crash_times, susp = s
    fabric, decisions = run_consensus(
        MRIndirectConsensus, n, holders, crash_pids, crash_times, susp
    )
    ConsensusChecker(fabric.trace, fabric.config).check_all(
        no_loss=True, v_stability=True
    )
