"""Tests for the Figure-2 quorum-intersection arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.consensus.quorums import (
    adoption_threshold,
    intersection_lower_bound,
    max_resilience_for_intersection,
    phase2_quorum,
)


class TestPaperValues:
    def test_figure2_example(self):
        """The paper's illustration: n=7, f=2 — two 5-element quorums
        share at least 3 = n - 2f processes."""
        assert intersection_lower_bound(7, 2) == 3
        assert max_resilience_for_intersection(7) == 2
        assert phase2_quorum(7) == 5
        assert adoption_threshold(7) == 3

    @pytest.mark.parametrize(
        "n,quorum", [(3, 3), (4, 3), (5, 4), (6, 5), (7, 5), (10, 7)]
    )
    def test_phase2_quorum(self, n, quorum):
        assert phase2_quorum(n) == quorum

    @pytest.mark.parametrize("n,f", [(3, 0), (4, 1), (6, 1), (7, 2), (10, 3)])
    def test_max_resilience(self, n, f):
        assert max_resilience_for_intersection(n) == f

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            phase2_quorum(0)
        with pytest.raises(ConfigurationError):
            intersection_lower_bound(3, 3)
        with pytest.raises(ConfigurationError):
            intersection_lower_bound(3, 1, quorum=0)


class TestIntersectionTheorem:
    @given(st.integers(1, 300))
    def test_n_minus_2f_at_max_resilience_reaches_f_plus_1(self, n):
        """The inequality that drives the resilience drop: at
        f = max_resilience, n - 2f >= f + 1; at f + 1 it fails."""
        f = max_resilience_for_intersection(n)
        assert intersection_lower_bound(n, f) >= f + 1
        if f + 1 < n:
            assert intersection_lower_bound(n, f + 1) < (f + 1) + 1

    @given(st.integers(2, 300), st.data())
    def test_lower_bound_is_tight(self, n, data):
        """The pigeonhole bound 2q - n is achieved by actual sets."""
        f = data.draw(st.integers(0, n - 1))
        quorum = n - f
        a = set(range(quorum))            # first q elements
        b = set(range(n - quorum, n))     # last q elements
        assert len(a & b) == intersection_lower_bound(n, f)

    @given(st.integers(1, 300))
    def test_phase2_quorums_intersect_in_adoption_threshold(self, n):
        """Any two ⌈(2n+1)/3⌉-quorums share ⌈(n+1)/3⌉ processes — the
        agreement mechanism of Algorithm 3."""
        q = phase2_quorum(n)
        assert 2 * q - n >= adoption_threshold(n)

    @given(st.integers(1, 300))
    def test_adoption_threshold_exceeds_f(self, n):
        """⌈(n+1)/3⌉ >= f + 1 under f < n/3: a value echoed that often
        was echoed by at least one correct process."""
        f = max_resilience_for_intersection(n)
        assert adoption_threshold(n) >= f + 1
