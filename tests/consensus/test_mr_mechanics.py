"""Fine-grained tests of the MR round machinery (original and indirect)."""

import pytest

from repro.consensus.base import ID_SET_CODEC
from repro.consensus.mostefaoui_raynal import BOTTOM, MostefaouiRaynalConsensus
from repro.consensus.mr_indirect import MRIndirectConsensus
from repro.core.events import RDeliverEvent
from repro.core.identifiers import MessageId
from repro.net.faults import DelayRule
from repro.core.rcv import ReceivedStore
from tests.helpers import Fabric, app_message, make_fabric


def mount(fabric: Fabric, cls):
    services, stores, decisions = {}, {}, {}
    for pid in fabric.config.processes:
        services[pid] = cls(
            fabric.transports[pid],
            fabric.config,
            fabric.detectors[pid],
            ID_SET_CODEC,
        )
        stores[pid] = ReceivedStore()
        decisions[pid] = {}
        services[pid].on_decide(
            lambda k, v, _pid=pid: decisions[_pid].setdefault(k, v)
        )
    return services, stores, decisions


def give(fabric, stores, pid, message):
    stores[pid].add(message)
    fabric.trace.record(
        RDeliverEvent(time=fabric.engine.now, process=pid, message=message)
    )


def ids(*messages):
    return frozenset(m.mid for m in messages)


class TestEchoMechanics:
    def test_coordinator_echo_doubles_as_proposal(self):
        """MR Phase 1: the coordinator sends exactly one message per
        round — its echo — and that is what others react to."""
        fabric = make_fabric(3)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in (1, 2, 3):
            services[pid].propose(1, value)
        fabric.run()
        # Per round 1: each of 3 processes echoes to all (3 frames each)
        # = 9 echo frames total for a round-1 decision.
        assert fabric.network.frames_sent.get("mr.echo", 0) == 9

    def test_suspicion_produces_bottom_echo(self):
        fabric = make_fabric(3, detection_delay=5e-3)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        fabric.processes[2].crash()  # round-1 coordinator dead
        value = frozenset({MessageId(1, 1)})
        services[1].propose(1, value)
        services[3].propose(1, value)
        fabric.run()
        inst = services[1]._instances[1]
        # Round 1's echoes at p1 include ⊥ values (suspicion-driven).
        assert BOTTOM in inst.echoes[1].values()
        assert decisions[1][1] == value  # later round decided

    def test_late_coordinator_echo_after_suspicion_still_counts(self):
        """p echoes ⊥ on suspicion; the coordinator's delayed echo must
        still enter the phase-2 tally (it is an echo like any other)."""
        from repro.failure.detector import FalseSuspicion
        fs = tuple(
            FalseSuspicion(observer=p, target=2, start=0.1e-3, end=50e-3)
            for p in (1, 3)
        )
        # §3.3.2 staging, declaratively: the coordinator's frames crawl
        # while everyone else's zip (first matching DelayRule wins).
        fabric = make_fabric(3, false_suspicions=fs,
                             faults=(DelayRule(src=2, delay=5e-3),
                                     DelayRule(delay=0.5e-3)),
                             network_kind="constant")
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        value = frozenset({MessageId(2, 1)})
        for pid in (1, 2, 3):
            services[pid].propose(1, value)
        fabric.run()
        # Everyone decides despite the early false suspicions.
        for pid in (1, 2, 3):
            assert decisions[pid][1] == value

    def test_echo_sent_once_per_round(self):
        fabric = make_fabric(4, f=1)
        services, stores, decisions = mount(fabric, MostefaouiRaynalConsensus)
        value = frozenset({MessageId(1, 1)})
        for pid in fabric.config.processes:
            services[pid].propose(1, value)
        fabric.run()
        for pid in fabric.config.processes:
            inst = services[pid]._instances[pid in services and 1]
            assert inst.echoed == {1}  # only round 1 was needed


class TestIndirectFilter:
    def test_bottom_echo_size_is_small(self):
        """A ⊥ echo must not be charged the value's wire size."""
        fabric = make_fabric(4, f=1)
        services, stores, decisions = mount(fabric, MRIndirectConsensus)
        big_value_ids = frozenset({MessageId(2, i) for i in range(1, 50)})
        a_msgs = [app_message(2, i) for i in range(1, 50)]
        for m in a_msgs:
            give(fabric, stores, 2, m)
        services[2].propose(1, big_value_ids, stores[2].rcv)
        for pid in (1, 3, 4):
            services[pid].propose(1, frozenset(), stores[pid].rcv)
        fabric.run(until=0.5)
        # ⊥ echoes (from p1/p3/p4) are tiny; the coordinator's echo is
        # ~50 ids.  Average echo bytes must sit far below the full size.
        echo_bytes = fabric.network.bytes_sent.get("mri.echo", 0)
        echo_frames = fabric.network.frames_sent.get("mri.echo", 0)
        assert echo_frames > 0
        full = 50 * 12
        assert echo_bytes / echo_frames < full

    def test_rcv_charge_counts_lookups(self):
        """The indirect MR filter must evaluate rcv (and charge for it)
        on every non-coordinator receipt of the proposal."""
        charges = []
        fabric = make_fabric(4, f=1)
        services, stores, decisions = mount(fabric, MRIndirectConsensus)
        for pid in fabric.config.processes:
            services[pid].charge_rcv = charges.append
        m = app_message(2)
        for pid in fabric.config.processes:
            give(fabric, stores, pid, m)
            services[pid].propose(1, ids(m), stores[pid].rcv)
        fabric.run()
        assert len(charges) >= 3  # the three non-coordinators filtered
        assert all(c == 1 for c in charges)  # one id per value
