"""Golden regression: registry composition is bit-identical to the seed.

The fingerprints below were recorded on ``main`` *before* the registry
refactor, from the hand-wired ``build_system`` (six configurations
covering all four legacy stacks, both consensus families, both network
models, both failure detectors, jitter, crashes and the batch cap).
The registry-composed builder must reproduce every trace **bit for
bit** — same events, same times, same order.  A drift here means the
composer no longer wires what the old builder wired.

Same discipline as PR 2's topology refactor
(``tests/harness/test_fault_sweeps.py``), but at full-trace resolution
rather than summary metrics.
"""

import pytest

from repro import CrashSchedule, StackSpec, SymmetricWorkload, build_system
from repro.net.setups import SETUP_1, SETUP_2
from tests.helpers import trace_fingerprint

#: label -> (StackSpec kwargs, crash schedule, pre-refactor fingerprint)
GOLDEN = {
    "indirect-ct-sender-contention-crash": (
        dict(n=3, abcast="indirect", consensus="ct-indirect", rb="sender",
             network="contention", params=SETUP_1, seed=5),
        CrashSchedule.single(2, 0.1),
        "926577f371315b5d4596637bc7fb7e7feadc659c1933e850ba2663fbe533a9d3",
    ),
    "indirect-mr-flood-constant-heartbeat": (
        dict(n=4, abcast="indirect", consensus="mr-indirect", rb="flood",
             network="constant", fd="heartbeat", constant_latency=3e-4,
             seed=9),
        CrashSchedule.none(),
        "542b73e624b747019709a695ac8c94aced893e2278d3c68a4e61399a5149ffed",
    ),
    "faulty-ct-sender-contention": (
        dict(n=3, abcast="faulty-ids", consensus="ct", rb="sender",
             network="contention", params=SETUP_2, seed=2),
        CrashSchedule.none(),
        "8ed0f72ba298ce3e2558edfb9f67e35d537fbd350e28e60287bc5cd2e28f23d7",
    ),
    "urb-mr-constant-jitter-crash": (
        dict(n=5, abcast="urb-ids", consensus="mr", network="constant",
             constant_latency=5e-4, constant_per_byte=1e-7,
             constant_jitter=2e-4, seed=13),
        CrashSchedule.single(3, 0.12),
        "1ebf395d79fc124f1e00cc81bcfafc331af42c8aef2393d437f3923a266a107e",
    ),
    "onmessages-ct-flood-contention": (
        dict(n=3, abcast="on-messages", consensus="ct", rb="flood",
             network="contention", params=SETUP_1, seed=7),
        CrashSchedule.none(),
        "0d71f875e62030c9c4a1f78513c296eb3bb4346058108d901da6a68c221f8cd8",
    ),
    "onmessages-mr-sender-batchcap": (
        dict(n=4, abcast="on-messages", consensus="mr", rb="sender",
             network="constant", constant_latency=4e-4, batch_cap=2,
             seed=11),
        CrashSchedule.none(),
        "a93fa171c99eef0174b538b5b0e93251e89b6fee737a63dd6423a4bd7cf22b5c",
    ),
}


def run_case(kwargs, crashes) -> str:
    system = build_system(StackSpec(**kwargs), crashes)
    SymmetricWorkload(
        system, throughput=200.0, payload_size=48, duration=0.25,
    ).install()
    system.run(until=1.5, max_events=5_000_000)
    return trace_fingerprint(system.trace)


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_registry_composed_stack_matches_seed_trace(label):
    kwargs, crashes, expected = GOLDEN[label]
    assert run_case(kwargs, crashes) == expected


def test_fingerprint_is_deterministic_per_seed():
    kwargs, crashes, _ = GOLDEN["indirect-ct-sender-contention-crash"]
    assert run_case(kwargs, crashes) == run_case(kwargs, crashes)
    changed = dict(kwargs, seed=kwargs["seed"] + 1)
    assert run_case(changed, crashes) != run_case(kwargs, crashes)
