"""Tests for the layer registry and registry-driven composition.

The tentpole acceptance tests: every registered ``(abcast, consensus,
rb, fd)`` combination the compatibility constraints allow builds and
*runs* (messages get adelivered and the safety checkers pass), and
unknown names / incompatible pairs raise ``ConfigurationError`` naming
the registry entry, with a closest-match suggestion for typos.
"""

import pytest

from repro import StackSpec, build_system, check_abcast, make_payload
from repro.core.exceptions import ConfigurationError
from repro.stack import LayerEntry, LayerRegistry, frame_kind_conflicts, layers

ALL_COMBINATIONS = sorted(layers.compatible_combinations())


class TestLayerRegistryMachinery:
    def test_register_get_names(self):
        registry = LayerRegistry("demo")
        registry.register("alpha", "first")
        registry.add(LayerEntry("beta", "second", meta={"bound": 3}))
        assert registry.names() == ("alpha", "beta")
        assert "alpha" in registry and "gamma" not in registry
        assert registry.get("beta")["bound"] == 3
        assert len(registry) == 2

    def test_duplicate_registration_rejected(self):
        registry = LayerRegistry("demo")
        registry.register("alpha", "first")
        with pytest.raises(ConfigurationError, match="already has an entry"):
            registry.register("alpha", "again")

    def test_unknown_name_suggests_closest_match(self):
        registry = LayerRegistry("demo")
        registry.register("sequencer", "x")
        registry.register("indirect", "y")
        with pytest.raises(ConfigurationError) as err:
            registry.get("sequencr")
        assert "unknown demo 'sequencr'" in str(err.value)
        assert "did you mean 'sequencer'?" in str(err.value)
        assert "indirect" in str(err.value)  # full catalog listed

    def test_missing_meta_attribute_names_the_entry(self):
        entry = LayerEntry("alpha", "first")
        with pytest.raises(ConfigurationError, match="'alpha' declares no"):
            entry["codec"]

    def test_frame_kind_conflicts(self):
        a = LayerEntry("a", "", frame_kinds=("x.data", "x.ack"))
        b = LayerEntry("b", "", frame_kinds=("x.data",))
        assert frame_kind_conflicts([a, b]) == {"x.data": ["a", "b"]}
        assert frame_kind_conflicts([a]) == {}

    def test_shipped_catalog_has_no_frame_kind_conflicts(self):
        """No two co-mountable layers claim the same wire kind."""
        entries = [
            entry
            for registry in layers.FAMILIES
            for entry in registry
        ]
        assert frame_kind_conflicts(entries) == {}


class TestSpecValidationThroughRegistry:
    def test_unknown_abcast_suggests(self):
        with pytest.raises(ConfigurationError) as err:
            StackSpec(n=3, abcast="indirct")
        assert "unknown abcast 'indirct'" in str(err.value)
        assert "did you mean 'indirect'?" in str(err.value)

    def test_unknown_consensus_suggests(self):
        with pytest.raises(ConfigurationError) as err:
            StackSpec(n=3, abcast="indirect", consensus="ct-indirekt")
        assert "unknown consensus" in str(err.value)
        assert "did you mean 'ct-indirect'?" in str(err.value)

    @pytest.mark.parametrize("abcast,consensus", [
        ("indirect", "ct"),            # indirect needs an indirect algorithm
        ("faulty-ids", "ct-indirect"),  # and vice versa
        ("urb-ids", "mr-indirect"),
        ("on-messages", "none"),
        ("sequencer", "ct"),           # the sequencer mounts no consensus
    ])
    def test_incompatible_pair_names_the_registry_entry(self, abcast, consensus):
        with pytest.raises(ConfigurationError) as err:
            StackSpec(n=4, abcast=abcast, consensus=consensus)
        message = str(err.value)
        assert f"abcast registry entry {abcast!r}" in message
        assert "requires consensus in" in message

    def test_unknown_rb_fd_network_suggest(self):
        with pytest.raises(ConfigurationError, match="unknown rb 'floood'"):
            StackSpec(n=3, rb="floood")
        with pytest.raises(ConfigurationError, match="unknown fd"):
            StackSpec(n=3, fd="hartbeat")
        with pytest.raises(ConfigurationError, match="unknown network"):
            StackSpec(n=3, network="contentoin")

    def test_uniform_rb_not_directly_selectable(self):
        with pytest.raises(ConfigurationError, match="not directly selectable"):
            StackSpec(n=3, rb="uniform")

    @pytest.mark.parametrize("network", ["constant", "contention"])
    def test_constant_knobs_validated_for_every_network(self, network):
        """A negative knob is a typo whether or not the knob is inert
        under the selected model (pre-registry behaviour preserved)."""
        for field in ("constant_latency", "constant_per_byte",
                      "constant_jitter"):
            with pytest.raises(ConfigurationError):
                StackSpec(n=3, network=network, **{field: -1e-6})


class TestEveryRegisteredCombinationRuns:
    """Build and run the full compatibility matrix (the smoke matrix the
    hand-wired builder could never enumerate)."""

    @pytest.mark.parametrize(
        "abcast,consensus,rb,fd",
        ALL_COMBINATIONS,
        ids=["-".join(combo) for combo in ALL_COMBINATIONS],
    )
    def test_combination_builds_runs_and_checks(self, abcast, consensus, rb, fd):
        spec = StackSpec(
            n=4, abcast=abcast, consensus=consensus, rb=rb, fd=fd,
            network="constant", constant_latency=2e-4, seed=1,
        )
        system = build_system(spec)
        for pid in (1, 2, 3):
            system.processes[pid].schedule_at(
                0.001 * pid,
                lambda p=pid: system.abcasts[p].abroadcast(make_payload(20)),
            )
        assert system.run_until_delivered(count=3, timeout=5.0), (
            f"{abcast}/{consensus}/{rb}/{fd} did not deliver"
        )
        check_abcast(system.trace, system.config)

    def test_matrix_covers_all_five_abcast_variants(self):
        assert {combo[0] for combo in ALL_COMBINATIONS} == {
            "indirect", "faulty-ids", "urb-ids", "on-messages", "sequencer",
        }


class TestRegistryExtensionSeam:
    """Registering a new variant composes through the untouched builder."""

    def test_new_abcast_entry_builds_without_composer_changes(self):
        from repro.abcast.sequencer import SequencerAtomicBroadcast

        class SlowSequencer(SequencerAtomicBroadcast):
            NAME = "abcast-slow-sequencer"

        name = "test-slow-sequencer"
        layers.ABCASTS.register(
            name,
            "sequencer with a lazy retry timer (test-only)",
            factory=lambda ctx, pid: (None, None, SlowSequencer(
                ctx.transports[pid], ctx.detectors[pid], ctx.config,
                resend_interval=0.5,
            )),
            meta={
                "compatible_consensus": ("none",),
                "codec": None,
                "rb_override": None,
                "default_f": lambda spec: spec.n - 1,
            },
        )
        try:
            system = build_system(StackSpec(
                n=3, abcast=name, consensus="none", network="constant",
            ))
            assert isinstance(system.abcasts[1], SlowSequencer)
            assert system.abcasts[1].resend_interval == 0.5
            # The new name participates in spec validation immediately.
            with pytest.raises(ConfigurationError, match="requires consensus"):
                StackSpec(n=3, abcast=name, consensus="ct")
        finally:
            layers.ABCASTS._entries.pop(name)

    def test_combination_enumeration_is_registry_driven(self):
        from repro.harness.suite import registry_variants

        variants = registry_variants(n=3, network="constant")
        labels = [label for label, _ in variants]
        assert any(label.startswith("sequencer") for label in labels)
        assert len(labels) == len(set(labels))
        for _, stack in variants:
            assert stack.n == 3
            assert stack.network == "constant"
