"""Tests for the process shell (crash semantics) and the RNG registry."""

from repro.core.events import CrashEvent
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace


def make_process(pid: int = 1):
    engine = Engine()
    trace = Trace()
    return SimProcess(pid, engine, trace), engine, trace


class TestSimProcess:
    def test_guarded_timer_fires_while_alive(self):
        process, engine, _ = make_process()
        fired = []
        process.schedule(0.1, fired.append, "tick")
        engine.run_until_idle()
        assert fired == ["tick"]

    def test_crash_suppresses_pending_timers(self):
        process, engine, _ = make_process()
        fired = []
        process.schedule(1.0, fired.append, "tick")
        engine.schedule(0.5, process.crash)
        engine.run_until_idle()
        assert fired == []

    def test_crash_records_trace_event(self):
        process, engine, trace = make_process(pid=3)
        engine.schedule(0.25, process.crash)
        engine.run_until_idle()
        crash = trace.crashes()[3]
        assert isinstance(crash, CrashEvent)
        assert crash.time == 0.25

    def test_crash_is_idempotent(self):
        process, engine, trace = make_process()
        process.crash()
        process.crash()
        assert len(trace.events) == 1

    def test_crash_listeners_fire_once(self):
        process, _, _ = make_process()
        calls = []
        process.on_crash(lambda: calls.append(1))
        process.crash()
        process.crash()
        assert calls == [1]

    def test_schedule_at_absolute(self):
        process, engine, _ = make_process()
        fired = []
        process.schedule_at(0.7, lambda: fired.append(engine.now))
        engine.run_until_idle()
        assert fired == [0.7]


class TestRngRegistry:
    def test_streams_are_memoised(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_are_independent(self):
        """Draining one stream must not perturb another."""
        first = RngRegistry(seed=1)
        baseline = [first.stream("b").random() for _ in range(5)]

        second = RngRegistry(seed=1)
        for _ in range(1000):
            second.stream("a").random()  # heavy use of an unrelated stream
        assert [second.stream("b").random() for _ in range(5)] == baseline

    def test_same_seed_same_sequence(self):
        a = RngRegistry(seed=42).stream("x")
        b = RngRegistry(seed=42).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x")
        b = RngRegistry(seed=2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("x").random() != rngs.stream("y").random()

    def test_fork_is_deterministic_and_distinct(self):
        base = RngRegistry(seed=5)
        fork_a = base.fork("rep1")
        fork_b = RngRegistry(seed=5).fork("rep1")
        assert fork_a.stream("x").random() == fork_b.stream("x").random()
        assert (
            RngRegistry(seed=5).fork("rep1").stream("x").random()
            != RngRegistry(seed=5).fork("rep2").stream("x").random()
        )
