"""Tests for the discrete-event engine."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(0.3, fired.append, "c")
        engine.schedule(0.1, fired.append, "a")
        engine.schedule(0.2, fired.append, "b")
        engine.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        engine = Engine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.schedule(0.5, fired.append, tag)
        engine.run_until_idle()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(1.5, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [1.5]

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(2.0, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [2.0]

    def test_nested_scheduling_from_callbacks(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule(0.5, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule(1.0, outer)
        engine.run_until_idle()
        assert fired == [("outer", 1.0), ("inner", 1.5)]

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            Engine().schedule(-0.1, lambda: None)

    def test_rejects_scheduling_in_the_past(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        with pytest.raises(ConfigurationError):
            engine.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(0.1, fired.append, "x")
        handle.cancel()
        engine.run_until_idle()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(0.1, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_ignores_cancelled(self):
        engine = Engine()
        engine.schedule(0.1, lambda: None)
        handle = engine.schedule(0.2, lambda: None)
        handle.cancel()
        assert engine.pending() == 1

    def test_pending_counter_tracks_execution(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(0.1, lambda: None)
        assert engine.pending() == 3
        engine.run(until=0.1)
        assert engine.pending() == 0

    def test_pending_counts_events_scheduled_from_callbacks(self):
        engine = Engine()
        engine.schedule(0.1, lambda: engine.schedule(0.1, lambda: None))
        engine.run(until=0.1)
        assert engine.pending() == 1

    def test_cancel_after_execution_is_a_noop(self):
        # Cancelling a handle whose callback already fired must neither
        # mark it cancelled nor corrupt the pending counter.
        engine = Engine()
        handle = engine.schedule(0.1, lambda: None)
        engine.schedule(0.5, lambda: None)
        engine.run(until=0.2)
        assert handle.finished
        handle.cancel()
        assert not handle.cancelled
        assert engine.pending() == 1

    def test_double_cancel_decrements_once(self):
        engine = Engine()
        engine.schedule(0.1, lambda: None)
        handle = engine.schedule(0.2, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending() == 1


class TestRunControl:
    def test_until_stops_and_advances_clock(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "early")
        engine.schedule(5.0, fired.append, "late")
        end = engine.run(until=2.0)
        assert fired == ["early"]
        assert end == 2.0
        assert engine.now == 2.0
        engine.run(until=6.0)
        assert fired == ["early", "late"]

    def test_until_with_empty_queue_advances_clock(self):
        engine = Engine()
        assert engine.run(until=3.0) == 3.0
        assert engine.now == 3.0

    def test_stop_when_predicate(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule(0.1 * (i + 1), fired.append, i)
        engine.run(stop_when=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_max_events_guards_runaway(self):
        engine = Engine()

        def loop():
            engine.schedule(0.001, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="max_events"):
            engine.run(max_events=100)

    def test_run_is_not_reentrant(self):
        engine = Engine()

        def recurse():
            engine.run_until_idle()

        engine.schedule(0.1, recurse)
        with pytest.raises(RuntimeError, match="reentrant"):
            engine.run_until_idle()

    def test_events_executed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(0.1, lambda: None)
        engine.run_until_idle()
        assert engine.events_executed == 5
