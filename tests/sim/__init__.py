"""Test package marker: gives duplicate basenames unique module paths."""
