"""Tests for the FIFO resource model (CPUs, shared medium)."""

import pytest

from repro.sim.engine import Engine
from repro.sim.resources import FifoResource


class TestFifoResource:
    def test_idle_resource_serves_immediately(self):
        engine = Engine()
        cpu = FifoResource(engine, "cpu")
        done = []
        cpu.occupy(0.5, lambda: done.append(engine.now))
        engine.run_until_idle()
        assert done == [0.5]

    def test_jobs_queue_fifo(self):
        engine = Engine()
        cpu = FifoResource(engine, "cpu")
        done = []
        cpu.occupy(0.5, lambda: done.append(("a", engine.now)))
        cpu.occupy(0.25, lambda: done.append(("b", engine.now)))
        engine.run_until_idle()
        # b waits for a even though it is shorter: non-preemptive FIFO.
        assert done == [("a", 0.5), ("b", 0.75)]

    def test_queueing_after_idle_gap(self):
        engine = Engine()
        cpu = FifoResource(engine, "cpu")
        done = []
        cpu.occupy(0.1, lambda: done.append(engine.now))
        engine.run_until_idle()  # now = 0.1
        engine.schedule(0.9, lambda: cpu.occupy(0.2, lambda: done.append(engine.now)))
        engine.run_until_idle()
        # Second job starts fresh at t=1.0 (no phantom backlog).
        assert done == [0.1, pytest.approx(1.2)]

    def test_zero_duration_respects_fifo(self):
        engine = Engine()
        cpu = FifoResource(engine, "cpu")
        done = []
        cpu.occupy(0.5, lambda: done.append("long"))
        cpu.occupy(0.0, lambda: done.append("instant"))
        engine.run_until_idle()
        assert done == ["long", "instant"]

    def test_occupy_returns_completion_time(self):
        engine = Engine()
        cpu = FifoResource(engine, "cpu")
        assert cpu.occupy(0.3) == pytest.approx(0.3)
        assert cpu.occupy(0.2) == pytest.approx(0.5)

    def test_rejects_negative_duration(self):
        engine = Engine()
        with pytest.raises(ValueError):
            FifoResource(engine, "cpu").occupy(-1.0)

    def test_backlog(self):
        engine = Engine()
        cpu = FifoResource(engine, "cpu")
        assert cpu.backlog() == 0.0
        cpu.occupy(2.0)
        assert cpu.backlog() == pytest.approx(2.0)

    def test_utilisation(self):
        engine = Engine()
        cpu = FifoResource(engine, "cpu")
        cpu.occupy(0.5, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run_until_idle()
        assert cpu.utilisation() == pytest.approx(0.25)
        assert cpu.utilisation(elapsed=1.0) == pytest.approx(0.5)

    def test_utilisation_of_fresh_resource_is_zero(self):
        engine = Engine()
        assert FifoResource(engine, "cpu").utilisation() == 0.0

    def test_stats_counters(self):
        engine = Engine()
        cpu = FifoResource(engine, "cpu")
        cpu.occupy(0.1)
        cpu.occupy(0.2)
        engine.run_until_idle()
        assert cpu.jobs_served == 2
        assert cpu.busy_time == pytest.approx(0.3)
