"""Whole-system determinism: identical specs + seeds => identical traces.

This is the regression guarantee every performance number in
EXPERIMENTS.md rests on, so it is asserted at full-stack granularity for
several stack variants, including runs with crashes.
"""

import pytest

from repro import CrashSchedule, StackSpec, SymmetricWorkload, build_system


def run_once(spec: StackSpec, crashes=None, throughput=150.0, duration=0.4):
    system = build_system(spec, crashes)
    SymmetricWorkload(
        system, throughput=throughput, payload_size=64, duration=duration
    ).install()
    system.run(until=duration + 1.0, max_events=3_000_000)
    return system


def fingerprint(system):
    return [repr(e) for e in system.trace.events]


@pytest.mark.parametrize(
    "abcast,consensus",
    [
        ("indirect", "ct-indirect"),
        ("indirect", "mr-indirect"),
        ("faulty-ids", "ct"),
        ("urb-ids", "ct"),
        ("on-messages", "ct"),
    ],
)
def test_identical_runs_produce_identical_traces(abcast, consensus):
    spec = StackSpec(n=3, abcast=abcast, consensus=consensus, seed=11)
    a = run_once(spec)
    b = run_once(spec)
    assert fingerprint(a) == fingerprint(b)
    assert a.engine.events_executed == b.engine.events_executed


def test_determinism_with_crashes_and_heartbeat_fd():
    spec = StackSpec(
        n=3, abcast="indirect", consensus="ct-indirect", fd="heartbeat", seed=4
    )
    crashes = CrashSchedule.single(3, 0.15)
    a = run_once(spec, crashes)
    b = run_once(spec, crashes)
    assert fingerprint(a) == fingerprint(b)


def test_different_seeds_produce_different_arrivals():
    a = run_once(StackSpec(n=3, seed=1))
    b = run_once(StackSpec(n=3, seed=2))
    assert fingerprint(a) != fingerprint(b)


def test_seed_changes_do_not_change_safety():
    """Whatever the seed, the delivered sequences agree across processes."""
    for seed in range(5):
        system = run_once(StackSpec(n=3, seed=seed))
        sequences = {
            pid: tuple(system.trace.adelivery_sequence(pid))
            for pid in system.config.processes
        }
        assert len(set(sequences.values())) == 1
