"""Tests for the trace observers and their derived queries."""

from repro.core.events import (
    ABroadcastEvent,
    ADeliverEvent,
    CrashEvent,
    DecideEvent,
    ProposeEvent,
    RDeliverEvent,
)
from repro.core.identifiers import MessageId
from repro.core.message import AppMessage, make_payload
from repro.sim.trace import CountingTrace, MetricsTrace, Trace, TraceObserver


def msg(origin, seq):
    return AppMessage(mid=MessageId(origin, seq), sender=origin, payload=make_payload(1))


class TestTraceIndexing:
    def test_adelivery_sequence_preserves_order(self):
        trace = Trace()
        trace.record(ADeliverEvent(time=0.1, process=1, message=msg(1, 1)))
        trace.record(ADeliverEvent(time=0.2, process=1, message=msg(2, 1)))
        trace.record(ADeliverEvent(time=0.15, process=2, message=msg(1, 1)))
        assert trace.adelivery_sequence(1) == [MessageId(1, 1), MessageId(2, 1)]
        assert trace.adelivery_sequence(2) == [MessageId(1, 1)]

    def test_abroadcasts_and_decides(self):
        trace = Trace()
        trace.record(ABroadcastEvent(time=0.0, process=1, message=msg(1, 1)))
        trace.record(ProposeEvent(time=0.1, process=1, instance=1,
                                  value=frozenset({MessageId(1, 1)})))
        trace.record(DecideEvent(time=0.2, process=1, instance=1,
                                 value=frozenset({MessageId(1, 1)})))
        trace.record(DecideEvent(time=0.3, process=2, instance=1,
                                 value=frozenset({MessageId(1, 1)})))
        assert len(trace.abroadcasts()) == 1
        assert trace.instances() == [1]
        assert len(trace.decides(1)) == 2
        assert trace.first_decision(1).process == 1

    def test_first_decision_of_unknown_instance_is_none(self):
        assert Trace().first_decision(7) is None

    def test_correct_processes_excludes_crashed(self):
        trace = Trace()
        trace.record(CrashEvent(time=0.5, process=2))
        assert trace.correct_processes((1, 2, 3)) == {1, 3}
        assert trace.crash_time(2) == 0.5
        assert trace.crash_time(1) is None


class TestHoldersAt:
    def test_holders_require_all_ids_by_time(self):
        trace = Trace()
        trace.record(RDeliverEvent(time=0.1, process=1, message=msg(1, 1)))
        trace.record(RDeliverEvent(time=0.3, process=1, message=msg(2, 1)))
        trace.record(RDeliverEvent(time=0.2, process=2, message=msg(1, 1)))
        both = frozenset({MessageId(1, 1), MessageId(2, 1)})
        assert trace.holders_at(both, 0.2) == frozenset()
        assert trace.holders_at(both, 0.3) == {1}
        assert trace.holders_at(frozenset({MessageId(1, 1)}), 0.25) == {1, 2}

    def test_crashed_holders_do_not_count(self):
        """v-stability counts *live* copies: a crashed process's copy is
        lost with it."""
        trace = Trace()
        trace.record(RDeliverEvent(time=0.1, process=1, message=msg(1, 1)))
        trace.record(CrashEvent(time=0.2, process=1))
        ids = frozenset({MessageId(1, 1)})
        assert trace.holders_at(ids, 0.15) == {1}
        assert trace.holders_at(ids, 0.25) == frozenset()

    def test_empty_id_set_held_by_all_deliverers(self):
        trace = Trace()
        trace.record(RDeliverEvent(time=0.1, process=4, message=msg(1, 1)))
        assert trace.holders_at(frozenset(), 0.0) == {4}


class TestCountingTrace:
    """The probe-era performance trace: counts and crashes only."""

    def test_is_a_trace_observer(self):
        assert isinstance(CountingTrace(), TraceObserver)

    def test_counts_without_retaining(self):
        trace = CountingTrace()
        for i in range(100):
            trace.record(
                RDeliverEvent(time=i * 1e-3, process=1, message=msg(1, i))
            )
        assert len(trace) == 100
        assert not hasattr(trace, "events")

    def test_tracks_crashes_for_correctness_queries(self):
        trace = CountingTrace()
        trace.record(CrashEvent(time=0.5, process=2))
        assert trace.crashes()[2].time == 0.5
        assert trace.correct_processes((1, 2, 3)) == {1, 3}
        assert trace.instances() == []


class TestMetricsTrace:
    """The streaming observer: accumulators without an event list."""

    def test_is_a_trace_observer(self):
        assert isinstance(MetricsTrace(), TraceObserver)
        assert isinstance(Trace(), TraceObserver)

    def test_streams_latency_pairs(self):
        trace = MetricsTrace()
        trace.record(ABroadcastEvent(time=0.1, process=1, message=msg(1, 1)))
        trace.record(ADeliverEvent(time=0.25, process=1, message=msg(1, 1)))
        trace.record(ADeliverEvent(time=0.30, process=2, message=msg(1, 1)))
        correct = frozenset({1, 2})
        samples = trace.samples_for(correct)
        assert len(samples) == 2
        assert abs(samples[0] - 0.15) < 1e-12 or abs(samples[0] - 0.2) < 1e-12
        assert trace.messages_measured() == 1
        assert trace.fully_delivered(correct) == 1

    def test_window_filters_at_record_time(self):
        trace = MetricsTrace(warmup=0.1, cutoff=0.5)
        trace.record(ABroadcastEvent(time=0.05, process=1, message=msg(1, 1)))
        trace.record(ABroadcastEvent(time=0.2, process=1, message=msg(1, 2)))
        trace.record(ABroadcastEvent(time=0.6, process=1, message=msg(1, 3)))
        for seq in (1, 2, 3):
            trace.record(
                ADeliverEvent(time=0.7, process=1, message=msg(1, seq))
            )
        assert trace.messages_measured() == 1
        assert len(trace.samples_for(frozenset({1}))) == 1

    def test_retains_no_event_list(self):
        """The whole point: r-layer chatter is counted, never stored."""
        trace = MetricsTrace()
        for i in range(1000):
            trace.record(RDeliverEvent(time=i * 1e-3, process=1, message=msg(1, i)))
            trace.record(ProposeEvent(time=i * 1e-3, process=1, instance=i,
                                      value=frozenset({MessageId(1, i)})))
        assert len(trace) == 2000
        # No attribute of the observer grew with the event count: the
        # only per-item state is keyed by *measured messages*, of which
        # there are none here.
        assert trace.messages_measured() == 0
        assert trace.samples_for(frozenset({1})) == []
        assert not hasattr(trace, "events")

    def test_crash_and_instance_tracking(self):
        trace = MetricsTrace()
        trace.record(DecideEvent(time=0.1, process=1, instance=3,
                                 value=frozenset({MessageId(1, 1)})))
        trace.record(DecideEvent(time=0.2, process=2, instance=1,
                                 value=frozenset({MessageId(1, 1)})))
        trace.record(CrashEvent(time=0.5, process=2))
        assert trace.instances() == [1, 3]
        assert trace.correct_processes((1, 2, 3)) == {1, 3}

    def test_samples_exclude_crashed_processes_at_report_time(self):
        trace = MetricsTrace()
        trace.record(ABroadcastEvent(time=0.0, process=1, message=msg(1, 1)))
        trace.record(ADeliverEvent(time=0.1, process=1, message=msg(1, 1)))
        trace.record(ADeliverEvent(time=0.1, process=2, message=msg(1, 1)))
        trace.record(CrashEvent(time=0.2, process=2))
        correct = trace.correct_processes((1, 2))
        assert correct == {1}
        assert len(trace.samples_for(correct)) == 1
        # p2 crashed, so "fully delivered" only requires the survivors.
        assert trace.fully_delivered(correct) == 1
