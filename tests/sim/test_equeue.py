"""Equivalence and stress tests for the pluggable event queues.

The calendar and columnar queues are only admissible as defaults
because they are bit-identical to the reference binary heap: same pop
order, same clock advancement, same ``pending`` accounting, same
observer notification sequence.  These tests drive all three
implementations through adversarial schedules — bucket-boundary ties,
same-tick bursts, far-future timers, mid-run cancellations,
cancel/re-arm churn, pushes from inside callbacks — and assert the
sequences match exactly, plus ``from_queue`` migration in every
direction.  The random cases are seeded (deterministic), not
property-framework based.
"""

import random

import pytest

from repro.sim.engine import Engine, Scheduler
from repro.sim.equeue import (
    EQUEUES,
    BinaryHeapQueue,
    CalendarQueue,
    ColumnarQueue,
    EventQueue,
    make_equeue,
)

WIDTH = CalendarQueue.DEFAULT_WIDTH
KINDS = ("heap", "calendar", "columnar")


def drive(engine: Engine, seed: int, initial: int = 60) -> list[tuple]:
    """Run a seeded adversarial workload; return the firing log.

    Callbacks re-schedule with deltas drawn to stress every queue edge:
    zero delays (same-tick bursts), exact bucket-width multiples
    (boundary ties), sub-width dense gaps, and far-future jumps.  Some
    callbacks cancel a random pending handle.  Both engines replay the
    same seed; identical logs mean identical execution order (any
    ordering bug desynchronises the RNG draws and shows up loudly).
    """
    rng = random.Random(seed)
    log: list[tuple] = []
    handles: list = []
    counter = [0]

    def deltas():
        roll = rng.random()
        if roll < 0.25:
            return 0.0                                  # same-tick burst
        if roll < 0.45:
            return WIDTH * rng.randint(1, 4)            # boundary ties
        if roll < 0.65:
            return rng.uniform(0.0, WIDTH)              # dense, sub-bucket
        if roll < 0.85:
            return rng.uniform(0.0, 50 * WIDTH)
        return rng.uniform(0.5, 2.0)                    # far-future timer

    def fire(label):
        log.append((round(engine.now, 12), label))
        for _ in range(rng.randint(0, 2)):
            counter[0] += 1
            handles.append(
                engine.schedule(deltas(), fire, counter[0])
            )
        if handles and rng.random() < 0.2:
            victim = handles.pop(rng.randrange(len(handles)))
            victim.cancel()

    for i in range(initial):
        counter[0] += 1
        handles.append(engine.schedule_at(deltas(), fire, counter[0]))
    engine.run(until=5.0, max_events=200_000)
    return log


class TestThreeWayEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_adversarial_schedules_fire_identically(self, seed):
        log_heap = drive(Engine(equeue="heap"), seed)
        log_cal = drive(Engine(equeue="calendar"), seed)
        log_col = drive(Engine(equeue="columnar"), seed)
        assert log_heap == log_cal == log_col
        assert len(log_heap) > 100  # the workload actually ran

    @pytest.mark.parametrize("width", [1e-7, WIDTH, 1e-3, 10.0])
    def test_equivalence_is_width_independent(self, width):
        log_heap = drive(Engine(equeue="heap"), seed=99)
        log_cal = drive(Engine(equeue=CalendarQueue(width=width)), seed=99)
        log_col = drive(Engine(equeue=ColumnarQueue(width=width)), seed=99)
        assert log_heap == log_cal == log_col

    @pytest.mark.parametrize("seed", range(5))
    def test_cancel_rearm_churn_fires_identically(self, seed):
        """Failure-detector-style churn: callbacks keep cancelling live
        timers and re-arming them, so storage constantly holds a large
        tombstone fraction and recycled slots get reused mid-run."""

        def churn(kind: str) -> list[tuple]:
            rng = random.Random(seed)
            engine = Engine(equeue=kind)
            log: list[tuple] = []
            pool: list = []

            def tick(n):
                log.append((round(engine.now, 12), n))
                replace = n < 3000
                for _ in range(min(3, len(pool))):
                    victim = pool.pop(rng.randrange(len(pool)))
                    if victim.state == 0:
                        victim.cancel()
                    if replace:
                        pool.append(
                            engine.schedule(
                                rng.uniform(0.0, 4 * WIDTH), tick, n + 7
                            )
                        )

            for i in range(30):
                pool.append(
                    engine.schedule_at(rng.uniform(0.0, WIDTH), tick, i)
                )
            engine.run(until=1.0, max_events=100_000)
            return log

        logs = [churn(kind) for kind in KINDS]
        assert logs[0] == logs[1] == logs[2]
        assert len(logs[0]) > 200

    @pytest.mark.parametrize("seed", range(5))
    def test_observer_seam_sequence_identical(self, seed):
        """The ``on_push``/``on_cancel`` notification sequence — what
        the explorer's incremental fingerprint tracker consumes — must
        be the same events in the same order on every storage."""

        class Recorder:
            def __init__(self):
                self.events: list[tuple] = []

            def on_push(self, record):
                self.events.append(
                    ("push", round(record.time, 12), record.seq)
                )

            def on_cancel(self, record):
                self.events.append(
                    ("cancel", round(record.time, 12), record.seq)
                )

        def observed(kind: str) -> list[tuple]:
            engine = Engine(equeue=kind)
            recorder = Recorder()
            engine.equeue.observer = recorder
            drive(engine, seed, initial=40)
            return recorder.events

        seqs = [observed(kind) for kind in KINDS]
        assert seqs[0] == seqs[1] == seqs[2]
        assert any(kind == "cancel" for kind, *_ in seqs[0])

    def test_exact_tie_fifo_order(self):
        """Ties — including across a bucket boundary value — fire in
        scheduling order, on both queues."""
        times = [3 * WIDTH, 0.0, 3 * WIDTH, WIDTH, 3 * WIDTH, 0.0, 7.0, WIDTH]
        for kind in EQUEUES:
            engine = Engine(equeue=kind)
            fired = []
            for i, t in enumerate(times):
                engine.schedule_at(t, fired.append, (t, i))
            engine.run_until_idle()
            assert fired == sorted(
                ((t, i) for i, t in enumerate(times))
            ), f"wrong tie order on {kind!r}"

    def test_pending_and_now_agree(self):
        engines = {kind: Engine(equeue=kind) for kind in EQUEUES}
        for engine in engines.values():
            for i in range(50):
                engine.schedule_at(i * 0.37 * WIDTH, lambda: None)
            engine.run(until=8 * WIDTH)
        nows = {e.now for e in engines.values()}
        pendings = {e.pending() for e in engines.values()}
        counts = {e.events_executed for e in engines.values()}
        assert len(nows) == len(pendings) == len(counts) == 1


class TestSparseAdaptation:
    @pytest.mark.parametrize("kind", ["calendar", "columnar"])
    def test_long_sparse_timer_chain_loses_nothing(self, kind):
        """>WINDOW singleton buckets trigger the width rebuild; every
        event must survive it (regression: the rebuild used to drop the
        bucket being swapped in)."""
        engine = Engine(equeue=kind)
        fired = []
        n = 3 * CalendarQueue._WINDOW
        for i in range(n):
            # ~31 bucket-widths apart: every bucket is a singleton.
            engine.schedule_at(i * 1e-3, fired.append, i)
        engine.run_until_idle()
        assert fired == list(range(n))
        assert engine.pending() == 0
        queue = engine.equeue
        assert queue._width > CalendarQueue.DEFAULT_WIDTH  # it adapted

    def test_mixed_sparse_then_dense(self):
        logs = []
        for kind in KINDS:
            log: list = []
            engine = Engine(equeue=kind)

            def burst(t, log=log, engine=engine):
                log.append(round(engine.now, 12))
                for k in range(5):
                    engine.schedule(k * (WIDTH / 7), log.append, engine.now)

            for i in range(1200):
                engine.schedule_at(i * 2e-3, burst, i)
            engine.run_until_idle()
            logs.append(log)
        assert logs[0] == logs[1] == logs[2]

    @pytest.mark.parametrize("kind", ["calendar", "columnar"])
    def test_width_shrinks_back_when_traffic_reconcentrates(self, kind):
        """Regression for the width ratchet: a sparse burst used to
        grow bucket widths permanently ("widths never shrink", PR 6
        notes), so dense traffic after a sparse phase paid long
        same-bucket scans forever.  The adaptation must now shrink
        widths back once the sampled density re-concentrates."""
        engine = Engine(equeue=kind)
        queue = engine.equeue
        width0 = queue._width
        # Phase 1 — sparse singleton buckets: widths grow.
        n_sparse = 2 * CalendarQueue._WINDOW
        for i in range(n_sparse):
            engine.schedule_at(i * 1e-3, lambda: None)
        engine.run_until_idle()
        grown = queue._width
        assert grown > width0
        # Phase 2 — dense traffic: ~100 events per *grown* bucket for
        # more than an adaptation window's worth of buckets.
        fired = []
        base = engine.now
        spacing = grown / 100
        n_dense = (CalendarQueue._WINDOW + 8) * 100
        for i in range(n_dense):
            engine.schedule_at(base + i * spacing, fired.append, i)
        engine.run_until_idle()
        assert fired == list(range(n_dense))  # nothing lost in rebuilds
        assert queue._width < grown  # the ratchet released
        assert queue._width >= width0  # but never below the floor


class TestCancellationAndCompaction:
    @pytest.mark.parametrize("kind", sorted(EQUEUES))
    def test_mass_cancel_compacts_storage(self, kind):
        engine = Engine(equeue=kind)
        keep = []
        handles = [
            engine.schedule_at(i * WIDTH / 3, keep.append, i)
            for i in range(10_000)
        ]
        for h in handles[:9_000]:
            h.cancel()
        assert engine.pending() == 1_000
        # Tombstones must not linger once they dominate: storage shrank
        # well below the 10k scheduled.
        assert engine.equeue._stored() < 2_500
        engine.run_until_idle()
        assert keep == list(range(9_000, 10_000))
        assert engine.pending() == 0

    @pytest.mark.parametrize("kind", sorted(EQUEUES))
    def test_cancel_from_inside_callback_mid_drain(self, kind):
        engine = Engine(equeue=kind)
        fired = []
        handles = []

        def killer():
            fired.append("killer")
            # Cancel enough pending events to cross the compaction
            # threshold while the drain loop is live.
            for h in handles:
                h.cancel()

        engine.schedule_at(0.0, killer)
        handles.extend(
            engine.schedule_at(WIDTH * (1 + i % 5), fired.append, i)
            for i in range(500)
        )
        survivor = engine.schedule_at(WIDTH * 10, fired.append, "survivor")
        engine.run_until_idle()
        assert fired == ["killer", "survivor"]
        assert engine.pending() == 0
        assert not survivor.cancelled and survivor.finished

    def test_pending_is_o1_counter(self, monkeypatch):
        # Not a timing assertion: just that pending() answers without
        # touching storage internals (monkeypatch snapshot to explode;
        # the queue classes carry __slots__, so patch the class).
        engine = Engine()
        for i in range(100):
            engine.schedule(i * 1e-3, lambda: None)

        def boom(self):  # pragma: no cover - must not run
            raise AssertionError("pending() scanned the storage")

        monkeypatch.setattr(type(engine.equeue), "snapshot", boom)
        assert engine.pending() == 100


class _Consulted(Scheduler):
    """Overrides ``decide`` (same answers), so it must be consulted —
    installing it migrates the engine onto the heap."""

    def decide(self, now, ready):
        return super().decide(now, ready)


class TestMigration:
    def test_install_scheduler_migrates_to_heap_and_back(self):
        engine = Engine()
        assert engine.equeue.kind == "columnar"
        fired = []
        for i in range(20):
            engine.schedule_at(i * 0.4 * WIDTH, fired.append, i)
        engine.schedule_at(0.2 * WIDTH, fired.append, "tie-breaker")
        engine.install_scheduler(_Consulted())
        assert engine.equeue.kind == "heap"
        assert engine.pending() == 21
        engine.install_scheduler(None)
        assert engine.equeue.kind == "columnar"
        engine.run_until_idle()
        assert fired == [0, "tie-breaker"] + list(range(1, 20))

    def test_removal_migrates_back_to_the_constructed_kind(self):
        # The migrate-back target is the storage the engine was built
        # with, not a hard-coded kind.
        engine = Engine(equeue="calendar")
        engine.install_scheduler(_Consulted())
        assert engine.equeue.kind == "heap"
        engine.install_scheduler(None)
        assert engine.equeue.kind == "calendar"

    def test_pure_default_scheduler_skips_the_migration(self):
        # A scheduler that overrides neither decide nor wants can only
        # ever answer (FIRE, 0): run() serves it through the storage's
        # own drain loop, so there is nothing to migrate for.
        engine = Engine()
        fired = []
        for i in range(20):
            engine.schedule_at(i * 0.4 * WIDTH, fired.append, i)
        engine.schedule_at(0.2 * WIDTH, fired.append, "tie-breaker")
        engine.install_scheduler(Scheduler())
        assert engine.equeue.kind == "columnar"
        engine.run_until_idle()
        assert fired == [0, "tie-breaker"] + list(range(1, 20))

    @pytest.mark.parametrize("src", KINDS)
    @pytest.mark.parametrize("dst", KINDS)
    def test_from_queue_every_direction(self, src, dst):
        """All six cross-kind migrations (plus the three identity
        ones): pending set, tombstones, seq, FIFO ties and the ability
        to cancel through pre-migration handles must all survive."""
        engine = Engine(equeue=src)
        fired = []
        handles = [
            engine.schedule_at((i % 7) * WIDTH, fired.append, i)
            for i in range(40)
        ]
        handles[5].cancel()
        engine._migrate(EQUEUES[dst])
        assert engine.equeue.kind == dst
        assert engine.pending() == 39
        # A handle issued by the *source* queue must still cancel
        # cleanly on the destination queue.
        handles[7].cancel()
        # And a post-migration same-time push must tie-break after the
        # migrated entries (seq carried over).
        engine.schedule_at(0.0, fired.append, "post")
        engine.run_until_idle()
        expected = sorted(
            (i for i in range(40) if i not in (5, 7)),
            key=lambda i: (i % 7, i),
        )
        expected.insert(
            sum(1 for i in range(40) if i % 7 == 0 and i not in (5, 7)),
            "post",
        )
        assert fired == expected
        assert engine.pending() == 0

    def test_migration_carries_seq_so_later_ties_stay_fifo(self):
        engine = Engine()
        fired = []
        engine.schedule_at(WIDTH, fired.append, "pre")
        engine.install_scheduler(_Consulted())
        assert engine.equeue.kind == "heap"
        engine.schedule_at(WIDTH, fired.append, "post")  # same-time tie
        engine.run_until_idle()
        assert fired == ["pre", "post"]

    def test_controlled_run_on_calendar_built_engine(self):
        engine = Engine(equeue="calendar")
        fired = []
        for i in range(30):
            engine.schedule_at((i % 6) * WIDTH, fired.append, i)
        engine.install_scheduler(Scheduler())  # always (FIRE, 0)
        engine.run_until_idle()
        reference = sorted(range(30), key=lambda i: ((i % 6), i))
        assert fired == reference


class TestRegistry:
    def test_kinds(self):
        assert set(EQUEUES) == {"heap", "calendar", "columnar"}
        assert isinstance(make_equeue("heap"), BinaryHeapQueue)
        assert isinstance(make_equeue("calendar"), CalendarQueue)
        assert isinstance(make_equeue("columnar"), ColumnarQueue)

    def test_instance_passthrough(self):
        queue = CalendarQueue(width=1e-3)
        assert make_equeue(queue) is queue
        assert Engine(equeue=queue).equeue is queue

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event queue"):
            make_equeue("fibonacci")

    def test_bad_width_raises(self):
        with pytest.raises(ValueError, match="width"):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError, match="width"):
            ColumnarQueue(width=-1.0)

    def test_abstract_interface(self):
        base = EventQueue()
        for call in (
            lambda: base.push(0.0, print, ()),
            lambda: base.drain(None, None, None, None),
            base.snapshot,
            base._stored,
            base._compact,
        ):
            with pytest.raises(NotImplementedError):
                call()
