"""Equivalence and stress tests for the pluggable event queues.

The calendar queue is only admissible as the default because it is
bit-identical to the reference binary heap: same pop order, same clock
advancement, same ``pending`` accounting.  These tests drive both
implementations through adversarial schedules — bucket-boundary ties,
same-tick bursts, far-future timers, mid-run cancellations, pushes
from inside callbacks — and assert the sequences match exactly.  The
random cases are seeded (deterministic), not property-framework based.
"""

import random

import pytest

from repro.sim.engine import Engine, Scheduler
from repro.sim.equeue import (
    EQUEUES,
    BinaryHeapQueue,
    CalendarQueue,
    EventQueue,
    make_equeue,
)

WIDTH = CalendarQueue.DEFAULT_WIDTH


def drive(engine: Engine, seed: int, initial: int = 60) -> list[tuple]:
    """Run a seeded adversarial workload; return the firing log.

    Callbacks re-schedule with deltas drawn to stress every queue edge:
    zero delays (same-tick bursts), exact bucket-width multiples
    (boundary ties), sub-width dense gaps, and far-future jumps.  Some
    callbacks cancel a random pending handle.  Both engines replay the
    same seed; identical logs mean identical execution order (any
    ordering bug desynchronises the RNG draws and shows up loudly).
    """
    rng = random.Random(seed)
    log: list[tuple] = []
    handles: list = []
    counter = [0]

    def deltas():
        roll = rng.random()
        if roll < 0.25:
            return 0.0                                  # same-tick burst
        if roll < 0.45:
            return WIDTH * rng.randint(1, 4)            # boundary ties
        if roll < 0.65:
            return rng.uniform(0.0, WIDTH)              # dense, sub-bucket
        if roll < 0.85:
            return rng.uniform(0.0, 50 * WIDTH)
        return rng.uniform(0.5, 2.0)                    # far-future timer

    def fire(label):
        log.append((round(engine.now, 12), label))
        for _ in range(rng.randint(0, 2)):
            counter[0] += 1
            handles.append(
                engine.schedule(deltas(), fire, counter[0])
            )
        if handles and rng.random() < 0.2:
            victim = handles.pop(rng.randrange(len(handles)))
            victim.cancel()

    for i in range(initial):
        counter[0] += 1
        handles.append(engine.schedule_at(deltas(), fire, counter[0]))
    engine.run(until=5.0, max_events=200_000)
    return log


class TestHeapCalendarEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_adversarial_schedules_fire_identically(self, seed):
        log_heap = drive(Engine(equeue="heap"), seed)
        log_cal = drive(Engine(equeue="calendar"), seed)
        assert log_heap == log_cal
        assert len(log_heap) > 100  # the workload actually ran

    @pytest.mark.parametrize("width", [1e-7, WIDTH, 1e-3, 10.0])
    def test_equivalence_is_width_independent(self, width):
        log_heap = drive(Engine(equeue="heap"), seed=99)
        log_cal = drive(Engine(equeue=CalendarQueue(width=width)), seed=99)
        assert log_heap == log_cal

    def test_exact_tie_fifo_order(self):
        """Ties — including across a bucket boundary value — fire in
        scheduling order, on both queues."""
        times = [3 * WIDTH, 0.0, 3 * WIDTH, WIDTH, 3 * WIDTH, 0.0, 7.0, WIDTH]
        for kind in EQUEUES:
            engine = Engine(equeue=kind)
            fired = []
            for i, t in enumerate(times):
                engine.schedule_at(t, fired.append, (t, i))
            engine.run_until_idle()
            assert fired == sorted(
                ((t, i) for i, t in enumerate(times))
            ), f"wrong tie order on {kind!r}"

    def test_pending_and_now_agree(self):
        engines = {kind: Engine(equeue=kind) for kind in EQUEUES}
        for engine in engines.values():
            for i in range(50):
                engine.schedule_at(i * 0.37 * WIDTH, lambda: None)
            engine.run(until=8 * WIDTH)
        nows = {e.now for e in engines.values()}
        pendings = {e.pending() for e in engines.values()}
        counts = {e.events_executed for e in engines.values()}
        assert len(nows) == len(pendings) == len(counts) == 1


class TestSparseAdaptation:
    def test_long_sparse_timer_chain_loses_nothing(self):
        """>WINDOW singleton buckets trigger the width rebuild; every
        event must survive it (regression: the rebuild used to drop the
        bucket being swapped in)."""
        engine = Engine(equeue="calendar")
        fired = []
        n = 3 * CalendarQueue._WINDOW
        for i in range(n):
            # ~31 bucket-widths apart: every bucket is a singleton.
            engine.schedule_at(i * 1e-3, fired.append, i)
        engine.run_until_idle()
        assert fired == list(range(n))
        assert engine.pending() == 0
        queue = engine.equeue
        assert queue._width > CalendarQueue.DEFAULT_WIDTH  # it adapted

    def test_mixed_sparse_then_dense(self):
        log_heap = []
        log_cal = []
        for kind, log in (("heap", log_heap), ("calendar", log_cal)):
            engine = Engine(equeue=kind)

            def burst(t, log=log, engine=engine):
                log.append(round(engine.now, 12))
                for k in range(5):
                    engine.schedule(k * (WIDTH / 7), log.append, engine.now)

            for i in range(1200):
                engine.schedule_at(i * 2e-3, burst, i)
            engine.run_until_idle()
        assert log_heap == log_cal


class TestCancellationAndCompaction:
    @pytest.mark.parametrize("kind", sorted(EQUEUES))
    def test_mass_cancel_compacts_storage(self, kind):
        engine = Engine(equeue=kind)
        keep = []
        handles = [
            engine.schedule_at(i * WIDTH / 3, keep.append, i)
            for i in range(10_000)
        ]
        for h in handles[:9_000]:
            h.cancel()
        assert engine.pending() == 1_000
        # Tombstones must not linger once they dominate: storage shrank
        # well below the 10k scheduled.
        assert engine.equeue._stored() < 2_500
        engine.run_until_idle()
        assert keep == list(range(9_000, 10_000))
        assert engine.pending() == 0

    @pytest.mark.parametrize("kind", sorted(EQUEUES))
    def test_cancel_from_inside_callback_mid_drain(self, kind):
        engine = Engine(equeue=kind)
        fired = []
        handles = []

        def killer():
            fired.append("killer")
            # Cancel enough pending events to cross the compaction
            # threshold while the drain loop is live.
            for h in handles:
                h.cancel()

        engine.schedule_at(0.0, killer)
        handles.extend(
            engine.schedule_at(WIDTH * (1 + i % 5), fired.append, i)
            for i in range(500)
        )
        survivor = engine.schedule_at(WIDTH * 10, fired.append, "survivor")
        engine.run_until_idle()
        assert fired == ["killer", "survivor"]
        assert engine.pending() == 0
        assert not survivor.cancelled and survivor.finished

    def test_pending_is_o1_counter(self):
        # Not a timing assertion: just that pending() answers without
        # touching storage internals (monkeypatch snapshot to explode).
        engine = Engine()
        for i in range(100):
            engine.schedule(i * 1e-3, lambda: None)
        engine.equeue.snapshot = None  # any scan would raise
        assert engine.pending() == 100


class _Consulted(Scheduler):
    """Overrides ``decide`` (same answers), so it must be consulted —
    installing it migrates the engine onto the heap."""

    def decide(self, now, ready):
        return super().decide(now, ready)


class TestMigration:
    def test_install_scheduler_migrates_to_heap_and_back(self):
        engine = Engine()
        assert engine.equeue.kind == "calendar"
        fired = []
        for i in range(20):
            engine.schedule_at(i * 0.4 * WIDTH, fired.append, i)
        engine.schedule_at(0.2 * WIDTH, fired.append, "tie-breaker")
        engine.install_scheduler(_Consulted())
        assert engine.equeue.kind == "heap"
        assert engine.pending() == 21
        engine.install_scheduler(None)
        assert engine.equeue.kind == "calendar"
        engine.run_until_idle()
        assert fired == [0, "tie-breaker"] + list(range(1, 20))

    def test_pure_default_scheduler_skips_the_migration(self):
        # A scheduler that overrides neither decide nor wants can only
        # ever answer (FIRE, 0): run() serves it through the storage's
        # own drain loop, so there is nothing to migrate for.
        engine = Engine()
        fired = []
        for i in range(20):
            engine.schedule_at(i * 0.4 * WIDTH, fired.append, i)
        engine.schedule_at(0.2 * WIDTH, fired.append, "tie-breaker")
        engine.install_scheduler(Scheduler())
        assert engine.equeue.kind == "calendar"
        engine.run_until_idle()
        assert fired == [0, "tie-breaker"] + list(range(1, 20))

    def test_migration_carries_seq_so_later_ties_stay_fifo(self):
        engine = Engine()
        fired = []
        engine.schedule_at(WIDTH, fired.append, "pre")
        engine.install_scheduler(_Consulted())
        assert engine.equeue.kind == "heap"
        engine.schedule_at(WIDTH, fired.append, "post")  # same-time tie
        engine.run_until_idle()
        assert fired == ["pre", "post"]

    def test_controlled_run_on_calendar_built_engine(self):
        engine = Engine(equeue="calendar")
        fired = []
        for i in range(30):
            engine.schedule_at((i % 6) * WIDTH, fired.append, i)
        engine.install_scheduler(Scheduler())  # always (FIRE, 0)
        engine.run_until_idle()
        reference = sorted(range(30), key=lambda i: ((i % 6), i))
        assert fired == reference


class TestRegistry:
    def test_kinds(self):
        assert set(EQUEUES) == {"heap", "calendar"}
        assert isinstance(make_equeue("heap"), BinaryHeapQueue)
        assert isinstance(make_equeue("calendar"), CalendarQueue)

    def test_instance_passthrough(self):
        queue = CalendarQueue(width=1e-3)
        assert make_equeue(queue) is queue
        assert Engine(equeue=queue).equeue is queue

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event queue"):
            make_equeue("fibonacci")

    def test_bad_width_raises(self):
        with pytest.raises(ValueError, match="width"):
            CalendarQueue(width=0.0)

    def test_abstract_interface(self):
        base = EventQueue()
        for call in (
            lambda: base.push(0.0, print, ()),
            lambda: base.drain(None, None, None, None),
            base.snapshot,
            base._stored,
            base._compact,
        ):
            with pytest.raises(NotImplementedError):
                call()
