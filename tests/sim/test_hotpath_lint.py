"""The allocation-discipline lint passes on the checked-in tree.

``tools/hotpath_lint.py`` is CI's guard on the event-core hot path
(``__slots__`` everywhere, no ``getattr``/dict literals in the fused
drain loops); running it under pytest too means a regression fails the
ordinary test suite as well, with the lint's own diagnostics attached.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[2]


def test_hotpath_lint_passes():
    proc = subprocess.run(
        [sys.executable, str(_ROOT / "tools" / "hotpath_lint.py")],
        capture_output=True,
        text=True,
        cwd=_ROOT,
        env={"PYTHONPATH": str(_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout, proc.stdout
