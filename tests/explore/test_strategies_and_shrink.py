"""Strategies, pruning, shrinking and replay determinism."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.explore import (
    Deviation,
    ExploreSpec,
    STRATEGIES,
    ScheduleExecutor,
    explore,
    explore_spec,
    replay,
    shrink,
)
from repro.explore.strategies import children_of, run_strategy
from tests.helpers import trace_fingerprint

FAULTY = explore_spec("faulty")


def test_strategy_registry_names_and_unknown_rejected():
    assert set(STRATEGIES.names()) == {"delay-bounded", "dfs", "random-walk"}
    with pytest.raises(ConfigurationError, match="did you mean"):
        explore(explore_spec("faulty", strategy="delay-bouned"))


def test_unknown_preset_rejected_with_hint():
    with pytest.raises(ConfigurationError, match="presets"):
        explore_spec("fautly")


class TestChildrenGeneration:
    def test_children_extend_strictly_after_last_deviation(self):
        executor = ScheduleExecutor(FAULTY)
        root = executor.run(())
        children = children_of((), root, FAULTY)
        assert children, "the root must branch"
        assert all(len(c) == 1 for c in children)
        anchor = (Deviation(5, "c", 2),)
        record = executor.run(anchor)
        grandchildren = children_of(anchor, record, FAULTY)
        assert all(c[-1].step > 5 for c in grandchildren)

    def test_no_children_beyond_deviation_budget(self):
        spec = explore_spec("faulty", max_deviations=0)
        executor = ScheduleExecutor(spec)
        assert children_of((), executor.run(()), spec) == []

    def test_pruning_cuts_repeat_fingerprints(self):
        spec = explore_spec("indirect", budget=25, stop_after=0)
        result = run_strategy(spec)
        assert result.violations == []
        assert result.pruned > 0, "symmetric interleavings must be pruned"


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["delay-bounded", "dfs", "random-walk"])
    def test_every_strategy_finds_the_faulty_violation(self, strategy):
        outcome = explore(explore_spec(
            "faulty", strategy=strategy, budget=1500,
        ))
        assert not outcome.ok, outcome.summary()
        violation = outcome.violations[0]
        assert violation.prop.startswith("Abcast")
        assert violation.repro  # a non-default schedule was needed

    def test_random_walk_is_deterministic_per_seed(self):
        a = explore(explore_spec("faulty", strategy="random-walk",
                                 budget=40, seed=7, stop_after=0))
        b = explore(explore_spec("faulty", strategy="random-walk",
                                 budget=40, seed=7, stop_after=0))
        assert [v.repro for v in a.raw_violations] == [
            v.repro for v in b.raw_violations
        ]
        assert a.schedules == b.schedules


class TestShrinkAndReplay:
    def test_shrink_removes_padding_deviations(self):
        executor = ScheduleExecutor(FAULTY)
        # The known one-deviation counterexample, padded with noise that
        # does not contribute (a tie reorder and a defer elsewhere).
        base = executor.run(())
        noisy = None
        for menu in base.menus:
            if menu.deferrable:
                noisy = (
                    Deviation(menu.step, "d", menu.deferrable[0]),
                    Deviation(5, "c", 2),
                    Deviation(8, "f", 1),
                )
                break
        assert noisy is not None
        record = executor.run(noisy)
        assert record.violation is not None
        result = shrink(executor, record.violation)
        assert result.removed() >= 1
        assert len(result.deviations) < len(noisy)
        assert result.record.violation is not None
        assert result.violation.prop == record.violation.prop

    def test_replay_is_deterministic_and_checker_visible(self):
        outcome = explore(FAULTY)
        violation = outcome.violations[0]
        system_a, record_a = replay(FAULTY, violation.repro)
        system_b, record_b = replay(FAULTY, violation.repro)
        assert trace_fingerprint(system_a.trace) == trace_fingerprint(
            system_b.trace
        )
        assert record_a.violation is not None
        assert record_a.violation.prop == violation.prop
        # The replayed system exposes the full trace: the analysis
        # surface (adelivery sequences, decides) works unchanged.
        assert system_a.trace.instances()
        assert len(system_a.trace.events) == record_a.events or True
        assert record_b.drained == record_a.drained

    def test_replay_accepts_deviation_tuples(self):
        system, record = replay(FAULTY, (Deviation(5, "c", 2),))
        assert record.violation is not None
        assert system.processes[2].crashed


class TestRunawaySchedules:
    def test_max_events_guard_yields_inconclusive_not_fatal(self):
        spec = explore_spec("faulty", max_events=10, budget=5, stop_after=0)
        record = ScheduleExecutor(spec).run(())
        assert record.diverged and record.violation is None
        assert not record.drained
        # The search survives diverged schedules and reports them clean.
        outcome = explore(spec)
        assert outcome.ok
        assert outcome.schedules == 1  # truncated root is not expanded


class TestExploreSpecValidation:
    def test_sends_must_name_known_processes(self):
        with pytest.raises(ConfigurationError):
            ExploreSpec(
                name="bad", stack=FAULTY.stack, sends=((9, 0.0, 16),),
            )

    def test_default_sends_derived_from_group(self):
        assert FAULTY.sends == ((1, 0.0, 16), (2, 0.0, 16))
        solo = ExploreSpec(
            name="solo",
            stack=FAULTY.stack,
            sends=((3, 0.001, 8),),
        )
        assert solo.sends == ((3, 0.001, 8),)

    def test_consensus_checks_default_tracks_indirection(self):
        assert not FAULTY.wants_consensus_checks()
        assert explore_spec("indirect").wants_consensus_checks()
