"""The engine's decision-point seam: default fidelity, defer, crash.

The golden-trace suite (``tests/stack/test_golden_traces.py``) pins the
*absence* of the seam — no scheduler, bit-identical traces.  These
tests pin its presence: the base scheduler replays the default order
exactly, deviations do what their contract says, and deferred events
survive (or die) correctly.
"""

import pytest

from repro import CrashSchedule, StackSpec, build_system
from repro.core.exceptions import ConfigurationError
from repro.explore.scheduler import (
    Deviation,
    ExploreScheduler,
    format_deviations,
    parse_deviations,
)
from repro.net.frame import Frame
from repro.sim.engine import DEFER, Engine, Scheduler
from tests.helpers import trace_fingerprint


def small_system(**overrides):
    kwargs = dict(
        n=3,
        abcast="faulty-ids",
        consensus="ct",
        rb="sender",
        network="constant",
        drop_in_flight_on_crash=True,
    )
    kwargs.update(overrides)
    return build_system(StackSpec(**kwargs), CrashSchedule.none())


def drive(system, sends=((1, 16), (2, 16))):
    from repro.core.message import make_payload

    for pid, size in sends:
        system.processes[pid].schedule_at(
            0.0, lambda p=pid, s=size: system.abcasts[p].abroadcast(
                make_payload(s)
            )
        )
    system.engine.run(until=1.0, max_events=100_000)
    return trace_fingerprint(system.trace)


class TestDefaultSchedulerFidelity:
    def test_base_scheduler_reproduces_the_uncontrolled_trace(self):
        baseline = drive(small_system())
        controlled = small_system()
        controlled.engine.install_scheduler(Scheduler())
        assert drive(controlled) == baseline

    def test_explore_scheduler_with_no_deviations_is_the_default_order(self):
        baseline = drive(small_system())
        system = small_system()
        system.engine.install_scheduler(
            ExploreScheduler(system, (), max_crashes=1)
        )
        assert drive(system) == baseline

    def test_install_while_running_rejected(self):
        engine = Engine()
        engine.schedule(0.0, engine.install_scheduler, Scheduler())
        with pytest.raises(ConfigurationError):
            engine.run_until_idle()


class TestEngineDeferMechanics:
    def test_deferred_event_fires_after_everything_else(self):
        order = []

        class DeferFirst(Scheduler):
            done = False

            def decide(self, now, ready):
                if not self.done and len(ready) > 1:
                    self.done = True
                    return (DEFER, 0)
                return ("fire", 0)

        engine = Engine()
        engine.install_scheduler(DeferFirst())
        engine.schedule(0.1, order.append, "a")
        engine.schedule(0.1, order.append, "b")
        engine.schedule(0.2, order.append, "c")
        engine.run_until_idle()
        assert order == ["b", "c", "a"]

    def test_deferred_event_released_at_horizon(self):
        order = []

        class DeferFirst(Scheduler):
            done = False

            def decide(self, now, ready):
                if not self.done and len(ready) > 1:
                    self.done = True
                    return (DEFER, 0)
                return ("fire", 0)

        engine = Engine()
        engine.install_scheduler(DeferFirst())
        engine.schedule(0.1, order.append, "a")
        engine.schedule(0.1, order.append, "b")
        # Recurring timer past the horizon: without the horizon
        # backstop the deferred event would wait forever.
        engine.schedule(5.0, order.append, "late")
        final = engine.run(until=1.0)
        assert order == ["b", "a"]
        assert final == 1.0
        assert engine.pending() == 1  # "late" still queued

    def test_cancelled_deferred_event_never_fires(self):
        order = []

        class DeferThenCancel(Scheduler):
            handle = None
            done = False

            def decide(self, now, ready):
                if not self.done and len(ready) > 1:
                    self.done = True
                    return (DEFER, 0)
                return ("fire", 0)

        scheduler = DeferThenCancel()
        engine = Engine()
        engine.install_scheduler(scheduler)
        victim = engine.schedule(0.1, order.append, "victim")
        engine.schedule(0.1, order.append, "b")
        engine.schedule(0.2, victim.cancel)
        engine.run_until_idle()
        assert order == ["b"]
        assert victim.cancelled and not victim.finished

    def test_pending_counts_deferred_events(self):
        class DeferFirst(Scheduler):
            done = False

            def decide(self, now, ready):
                if not self.done and len(ready) > 1:
                    self.done = True
                    return (DEFER, 0)
                return ("fire", 0)

        engine = Engine()
        engine.install_scheduler(DeferFirst())
        engine.schedule(0.1, lambda: None)
        engine.schedule(0.1, lambda: None)
        assert engine.pending() == 2
        engine.run_until_idle()
        assert engine.pending() == 0


class TestEventAnnotations:
    def test_frame_deliveries_timers_and_crashes_are_annotated(self):
        seen: dict[str, int] = {"frame": 0, "timer": 0, "crash": 0}

        class Inspect(Scheduler):
            def decide(self, now, ready):
                for record in ready:
                    info = record.info
                    if isinstance(info, Frame):
                        seen["frame"] += 1
                    elif isinstance(info, tuple) and info and info[0] in seen:
                        seen[info[0]] += 1
                return ("fire", 0)

        system = build_system(
            StackSpec(n=3, abcast="faulty-ids", consensus="ct",
                      network="constant"),
            CrashSchedule.single(3, 0.05),
        )
        system.engine.install_scheduler(Inspect())
        drive(system)
        assert seen["frame"] > 0
        assert seen["timer"] > 0
        assert seen["crash"] > 0


class TestDeviationCodec:
    def test_round_trip(self):
        devs = (Deviation(4, "d", 1), Deviation(5, "d", 1), Deviation(23, "c", 2))
        assert parse_deviations(format_deviations(devs)) == devs
        assert format_deviations(()) == ""
        assert parse_deviations("") == ()
        assert parse_deviations(" 7:f2 ") == (Deviation(7, "f", 2),)

    def test_malformed_rejected(self):
        for bad in ("x", "1:z0", "1:d", "one:d0"):
            with pytest.raises(ConfigurationError):
                parse_deviations(bad)
        with pytest.raises(ConfigurationError):
            Deviation(1, "q", 0)

    def test_duplicate_steps_rejected(self):
        # One decision per step; a silent shadow would make the repro
        # string lie about the schedule it replays.
        with pytest.raises(ConfigurationError, match="same step"):
            parse_deviations("5:c2,5:d1")
        system = small_system()
        with pytest.raises(ConfigurationError, match="one step"):
            ExploreScheduler(
                system, (Deviation(5, "c", 2), Deviation(5, "d", 1)),
            )


class TestExploreSchedulerMenus:
    def test_menus_record_data_defers_and_gated_crashes(self):
        system = small_system()
        scheduler = ExploreScheduler(system, (), max_crashes=1)
        system.engine.install_scheduler(scheduler)
        drive(system)
        assert scheduler.steps == len(scheduler.menus) > 10
        deferrable = [m for m in scheduler.menus if m.deferrable]
        assert deferrable, "data frames must be deferrable somewhere"
        assert any(m.crashable for m in scheduler.menus)
        assert all(m.fingerprint for m in scheduler.menus)

    def test_zero_crash_budget_offers_no_crashes(self):
        system = small_system()
        scheduler = ExploreScheduler(system, (), max_crashes=0)
        system.engine.install_scheduler(scheduler)
        drive(system)
        assert all(not m.crashable for m in scheduler.menus)

    def test_inapplicable_deviation_is_skipped_not_fatal(self):
        system = small_system()
        scheduler = ExploreScheduler(
            system, (Deviation(0, "f", 99),), max_crashes=0
        )
        system.engine.install_scheduler(scheduler)
        baseline = drive(small_system())
        assert drive(system) == baseline
        assert scheduler.skipped and not scheduler.applied

    def test_crash_deviation_crashes_within_budget_only(self):
        system = small_system()
        scheduler = ExploreScheduler(
            system,
            (Deviation(0, "c", 1), Deviation(1, "c", 2)),
            max_crashes=1,
        )
        system.engine.install_scheduler(scheduler)
        drive(system)
        assert system.processes[1].crashed
        assert not system.processes[2].crashed
        assert len(scheduler.applied) == 1 and len(scheduler.skipped) == 1
