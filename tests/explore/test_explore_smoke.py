"""End-to-end exploration smoke: the acceptance surface of the subsystem.

* the faulty Section 2.2 stack's violation is rediscovered from the
  default budget with **no hand-crafted crash schedule or delay rules**,
  shrunk, and its repro replays to the same checker verdict;
* correct stacks pass the same bounded exploration clean;
* the multiprocessing fan-out and the ResultSet/report integration
  produce the same verdicts as the serial path.

The full registry matrix runs in CI's ``exploration-smoke`` job; here a
representative subset keeps the tier-1 suite fast.
"""

import pytest

from repro.checkers.abcast import check_abcast
from repro.core.exceptions import ProtocolViolationError
from repro.explore import (
    explore,
    explore_many,
    explore_spec,
    outcomes_result_set,
    registry_explore_specs,
    replay,
)
from repro.harness.__main__ import main


class TestFaultyStackRediscovery:
    def test_violation_found_shrunk_and_replayable(self):
        spec = explore_spec("faulty")
        outcome = explore(spec)
        assert not outcome.ok, outcome.summary()
        violation = outcome.violations[0]
        # The Section 2.2 class: validity or uniform agreement of
        # atomic broadcast, caused by a crash that loses message copies.
        assert violation.prop in (
            "Abcast Validity", "Abcast Uniform agreement",
        )
        assert any(d.op == "c" for d in violation.deviations), (
            "the counterexample must involve an injected crash"
        )
        # Shrunk: 1-minimal (dropping any deviation loses the bug).
        system, record = replay(spec, violation.repro)
        assert record.violation is not None
        assert record.violation.prop == violation.prop
        # The full trace is checker-visible, end to end.
        with pytest.raises(ProtocolViolationError):
            check_abcast(system.trace, system.config)

    def test_found_within_a_small_budget(self):
        outcome = explore(explore_spec("faulty", budget=120))
        assert not outcome.ok
        assert outcome.schedules <= 120

    def test_all_faulty_consensus_variants_fail(self):
        for consensus in ("ct", "mr"):
            outcome = explore(explore_spec(
                f"faulty-ids/{consensus}/sender", budget=500,
            ))
            assert not outcome.ok, consensus


class TestCorrectStacksExploreClean:
    @pytest.mark.parametrize("stack", [
        "indirect", "urb", "on-messages", "sequencer",
    ])
    def test_preset_stacks_clean(self, stack):
        outcome = explore(explore_spec(stack, budget=80, stop_after=0))
        assert outcome.ok, outcome.summary()
        assert outcome.schedules == 80 or outcome.exhausted

    def test_registry_matrix_enumerates_every_allowed_combo(self):
        specs = registry_explore_specs(n=3, budget=10)
        labels = {spec.label for spec in specs}
        assert "faulty-ids/ct/sender" in labels
        assert "indirect/ct-indirect/flood" in labels
        assert "urb-ids/ct" in labels
        assert "sequencer/none" in labels
        assert len(specs) >= 15


class TestParallelFanOut:
    def test_frontier_partitioned_search_finds_the_bug(self):
        outcome = explore(explore_spec("faulty"), jobs=2)
        assert not outcome.ok
        assert outcome.violations[0].prop.startswith("Abcast")

    def test_explore_many_runs_one_spec_per_worker(self):
        outcomes = explore_many(
            [explore_spec("faulty", budget=120),
             explore_spec("urb", budget=30, stop_after=0)],
            jobs=2,
        )
        assert not outcomes[0].ok
        assert outcomes[1].ok


class TestResultsPipeline:
    def test_outcomes_flow_through_resultset(self):
        outcomes = [explore(explore_spec("faulty", budget=120))]
        rs = outcomes_result_set(outcomes)
        rows = rs.to_rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["stack"] == "faulty"
        assert row["violations"] == 1
        assert row["property"].startswith("Abcast")
        assert row["repro"]
        assert "schedules" in row and row["schedules"] > 0
        assert rs.to_csv().splitlines()[0].startswith("stack,")


class TestExploreCli:
    def test_explore_verb_finds_and_prints_the_repro(self, capsys):
        assert main(["explore", "--stack", "faulty"]) == 0
        out = capsys.readouterr().out
        assert "faulty" in out
        assert "Abcast" in out
        assert "--replay" in out

    def test_replay_verb_reports_the_verdict_and_exits_nonzero(self, capsys):
        assert main(["explore", "--stack", "faulty", "--replay", "5:c2"]) == 1
        out = capsys.readouterr().out
        assert "violated" in out
        assert "adelivered" in out

    def test_replay_of_the_default_schedule_is_clean(self, capsys):
        assert main(["explore", "--stack", "faulty", "--replay", ""]) == 0
        assert "properties hold" in capsys.readouterr().out

    def test_unknown_stack_and_strategy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["explore", "--stack", "nope"])
        with pytest.raises(SystemExit):
            main(["explore", "--strategy", "bfs"])

    def test_csv_format(self, capsys):
        assert main([
            "explore", "--stack", "faulty", "--budget", "120",
            "--format", "csv",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("stack,")
        assert len(lines) == 2
