"""Fast-path equivalence: the batched controlled loop changes nothing.

The engine's controlled loop grew two fast paths (see
:mod:`repro.sim.engine`): pure default schedulers skip heap migration
entirely and drain the calendar queue, and singleton ready sets with no
applicable deviation fire without consulting the scheduler
(``Scheduler.wants``).  Both are pure performance — every observable
(traces, search verdicts, pruning counts, repro strings) must be
**bit-identical** with the fast path disabled.  These tests pin that by
running the same scenarios with ``CONTROLLED_FAST_PATH`` toggled.

The incremental fingerprint tracker (:mod:`repro.explore.fingerprint`)
rides the same seam; its equivalence is pinned here too via the
``fingerprint_check`` debug harness, which recomputes every fingerprint
from scratch and asserts agreement at each decision step.
"""

import pytest

import repro.sim.engine as engine_mod
from repro import CrashSchedule, StackSpec, SymmetricWorkload, build_system
from repro.explore import explore_spec, replay
from repro.explore.executor import ScheduleExecutor
from repro.explore.strategies import run_strategy
from repro.sim.engine import Scheduler
from repro.sim.trace import Trace
from tests.helpers import trace_fingerprint

STACK = dict(
    n=3, abcast="indirect", consensus="ct-indirect", rb="sender",
    network="constant", constant_latency=3e-4, seed=5,
)


def _run_traced(scheduler: Scheduler | None, fast: bool, monkeypatch) -> str:
    monkeypatch.setattr(engine_mod, "CONTROLLED_FAST_PATH", fast)
    system = build_system(
        StackSpec(**STACK), CrashSchedule.single(2, 0.1), trace=Trace()
    )
    if scheduler is not None:
        system.engine.install_scheduler(scheduler)
    SymmetricWorkload(
        system, throughput=150.0, payload_size=32, duration=0.2,
    ).install()
    system.run(until=1.5, max_events=5_000_000)
    return trace_fingerprint(system.trace)


class _Consulted(Scheduler):
    """Overrides ``decide`` (to the default choice): never fast-pathed."""

    def decide(self, time, ready):
        return super().decide(time, ready)


class TestGoldenTracesUnderScheduler:
    def test_default_scheduler_trace_identical_fast_on_off(self, monkeypatch):
        """Pure-default install (no migration) == forced controlled loop."""
        free = _run_traced(None, True, monkeypatch)
        fast = _run_traced(Scheduler(), True, monkeypatch)
        slow = _run_traced(Scheduler(), False, monkeypatch)
        consulted = _run_traced(_Consulted(), True, monkeypatch)
        assert free == fast == slow == consulted

    def test_batched_singleton_steps_change_nothing(self, monkeypatch):
        """A consulted scheduler under the singleton fast path matches a
        per-event consultation with the fast path compiled out."""
        fast = _run_traced(_Consulted(), True, monkeypatch)
        slow = _run_traced(_Consulted(), False, monkeypatch)
        assert fast == slow


def _search(strategy: str, fast: bool, monkeypatch):
    monkeypatch.setattr(engine_mod, "CONTROLLED_FAST_PATH", fast)
    spec = explore_spec(
        "faulty", budget=120, stop_after=0, strategy=strategy,
    )
    result = run_strategy(spec)
    return spec, result


class TestSearchEquivalence:
    @pytest.mark.parametrize(
        "strategy", ["delay-bounded", "dfs", "random-walk"]
    )
    def test_verdicts_identical_fast_on_off(self, strategy, monkeypatch):
        _, on = _search(strategy, True, monkeypatch)
        _, off = _search(strategy, False, monkeypatch)
        assert on.schedules == off.schedules
        assert on.pruned == off.pruned
        assert on.exhausted == off.exhausted
        assert [
            (v.prop, v.repro, v.steps) for v in on.violations
        ] == [
            (v.prop, v.repro, v.steps) for v in off.violations
        ]

    def test_section22_repro_rediscovered_both_ways(self, monkeypatch):
        spec, on = _search("delay-bounded", True, monkeypatch)
        _, off = _search("delay-bounded", False, monkeypatch)
        repros = {v.repro for v in on.violations}
        assert repros == {v.repro for v in off.violations}
        assert "5:c2" in repros, (
            "the crash-the-sender counterexample must surface with its "
            "canonical repro string"
        )
        # And the shared repro replays to the same verdict either way.
        monkeypatch.setattr(engine_mod, "CONTROLLED_FAST_PATH", True)
        _, fast_record = replay(spec, "5:c2")
        monkeypatch.setattr(engine_mod, "CONTROLLED_FAST_PATH", False)
        _, slow_record = replay(spec, "5:c2")
        assert fast_record.violation is not None
        assert slow_record.violation is not None
        assert fast_record.violation.prop == slow_record.violation.prop
        assert fast_record.steps == slow_record.steps
        assert fast_record.events == slow_record.events


class TestIncrementalFingerprints:
    def test_tracker_agrees_with_recompute_over_a_full_search(self):
        """``fingerprint_check`` recomputes every fingerprint from
        scratch at each decision step and asserts agreement; a full
        small search is the broadest coverage of push/fire/cancel/
        defer/crash/adeliver incremental updates."""
        spec = explore_spec(
            "faulty", budget=60, stop_after=0, fingerprint_check=True,
        )
        result = run_strategy(spec)
        assert result.schedules == 60
        assert result.violations  # the check harness still finds the bug

    def test_menus_and_fingerprints_identical_fast_on_off(self, monkeypatch):
        spec = explore_spec("faulty")
        executor = ScheduleExecutor(spec)
        monkeypatch.setattr(engine_mod, "CONTROLLED_FAST_PATH", True)
        on = executor.run((), menus=True)
        monkeypatch.setattr(engine_mod, "CONTROLLED_FAST_PATH", False)
        off = executor.run((), menus=True)
        assert on.steps == off.steps
        assert on.events == off.events
        assert on.menus == off.menus
