"""Every example script runs clean under ``PYTHONPATH=src``.

The examples are the repo's executable documentation, and nothing else
imports them — so API drift breaks them silently.  This smoke test
pins all of them: each script must exit 0 (their internal asserts are
the real checks), and the trace-viewer's exports must re-validate.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = sorted(
    p.name for p in (REPO / "examples").glob("*.py")
)


def run_example(name: str, tmp_path: Path, *args: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(REPO / "examples" / name), *args],
        cwd=tmp_path,  # any stray output lands in the sandbox
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_manifest_is_current():
    # A new example must be added to the parametrized list below (or
    # this file's docstring claim goes stale).
    assert EXAMPLES == sorted(
        [
            "explore_bug_hunt.py",
            "faulty_vs_indirect.py",
            "latency_study.py",
            "partition_study.py",
            "quickstart.py",
            "replicated_bank.py",
            "trace_analysis.py",
            "trace_viewer.py",
        ]
    )


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, tmp_path):
    args = (str(tmp_path),) if name == "trace_viewer.py" else ()
    result = run_example(name, tmp_path, *args)
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"


def test_trace_viewer_exports_validate(tmp_path):
    from repro.obs.export import validate_chrome_trace

    result = run_example("trace_viewer.py", tmp_path, str(tmp_path))
    assert result.returncode == 0, result.stderr
    for artifact in ("bank_timeline.json", "replay_timeline.json"):
        doc = json.loads((tmp_path / artifact).read_text())
        validate_chrome_trace(doc)
        assert doc["traceEvents"]
